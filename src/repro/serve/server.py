"""The equivalence-checking service: hand-rolled HTTP/1.1 on asyncio.

No ``http.server``, no threads-per-connection: one event loop accepts
connections over :mod:`asyncio` streams, parses a deliberately small
HTTP/1.1 subset (one request per connection, ``Content-Length``
bodies), and serves five routes::

    POST /v1/jobs             submit a spec/partial pair  -> 202 + id
    GET  /v1/jobs/<id>        poll a job                  -> 200 JSON
    GET  /v1/jobs/<id>/events stream ndjson progress      -> 200 chunks
    GET  /healthz             liveness + slot counts      -> 200 JSON
    GET  /stats               traffic/cache/tenant stats  -> 200 JSON

The request path is: **parse + lint** (HTTP 400 with the linter's
diagnostics on anything malformed) -> **admission**
(:class:`~repro.serve.scheduler.FairScheduler`; HTTP 429 +
``Retry-After`` under backpressure) -> **journal**
(:class:`~repro.serve.store.JobStore`, so a restart resumes queued
jobs and faithfully reports ones that died mid-flight) -> **dispatch**
(round-robin across tenants onto
:class:`~repro.serve.executor.JobExecutor` spawn slots, where a wedged
check is SIGKILLed at the hard deadline) -> **respond** (every
completed verdict also lands in the shared
:class:`~repro.analysis.static.CheckCache`, so a resubmitted or
delta'd netlist only re-checks affected output cones).

Every stage emits :mod:`repro.obs` events when a tracer is configured
(``--trace``): ``http`` instants per request, and ``job``/
``job:queued``/``job:execute`` complete-spans per job, each annotated
with the tenant — ``trace summary --group-by tenant`` explains a
loaded server from the one trace file.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.ladder import CHECK_ORDER
from ..obs import Tracer, write_jsonl
from . import protocol
from .executor import JobExecutor, JobRecord, JobSpec
from .protocol import PROTOCOL_VERSION, ProtocolError
from .scheduler import FairScheduler, QueueFull, QueuedJob
from .store import JobStore

__all__ = ["ServeConfig", "JobState", "EquivalenceServer"]

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error",
            503: "Service Unavailable"}

#: Parser limits: request line / single header / header count.
_MAX_LINE = 8192
_MAX_HEADERS = 100

#: Terminal job states (no further events will arrive).
_TERMINAL = ("done", "lost")


@dataclass
class ServeConfig:
    """Everything ``python -m repro.serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read the bound port from start()
    jobs: int = 2  # executor slots (worker processes)
    queue: int = 64  # global admission bound
    tenant_queue: Optional[int] = None  # per-tenant bound (None = half)
    cache_dir: Optional[str] = None  # shared CheckCache mount
    journal: Optional[str] = None  # job store path
    timeout: Optional[float] = None  # hard per-job deadline (SIGKILL)
    soft_timeout: Optional[float] = None  # cooperative per-job budget
    node_limit: Optional[int] = None  # per-check live-BDD-node budget
    patterns: int = 1000  # default r.p. patterns
    preflight: bool = False  # default static preflight
    retain: int = 1000  # finished jobs kept addressable in memory
    trace_path: Optional[str] = None  # write obs events here on stop


class JobState:
    """One job's in-memory lifecycle: status, events, watchers."""

    def __init__(self, spec: JobSpec, seq: int):
        self.spec = spec
        self.seq = seq
        self.status = "queued"
        self.record: Optional[JobRecord] = None
        self.detail = ""
        self.dispatch_seq: Optional[int] = None
        self.queue_seconds: Optional[float] = None
        self.events: List[Dict] = []
        self.changed = asyncio.Event()

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    def emit(self, kind: str, **data) -> None:
        """Append one progress event and wake every stream watcher."""
        event = {"ev": kind, "job": self.spec.id,
                 "ts": round(time.time(), 6)}
        event.update(data)
        self.events.append(event)
        self.changed.set()
        self.changed = asyncio.Event()

    def view(self) -> Dict:
        """The job document served by ``GET /v1/jobs/<id>``."""
        doc: Dict = {"protocol": PROTOCOL_VERSION, "id": self.spec.id,
                     "tenant": self.spec.tenant, "status": self.status,
                     "checks": list(self.spec.checks)}
        if self.dispatch_seq is not None:
            doc["dispatch_seq"] = self.dispatch_seq
        if self.queue_seconds is not None:
            doc["queue_seconds"] = self.queue_seconds
        if self.detail:
            doc["detail"] = self.detail
        if self.record is not None:
            doc["result"] = self.record.to_dict()
            doc["verdict"] = self.record.verdict()
            doc["cached"] = self.record.cached
        return doc


@dataclass
class _Stats:
    """Monotone service counters surfaced by ``/stats``."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    rejected_queue_full: int = 0
    rejected_invalid: int = 0
    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    tenants: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def tenant(self, name: str) -> Dict[str, int]:
        entry = self.tenants.get(name)
        if entry is None:
            entry = {"submitted": 0, "completed": 0, "rejected": 0}
            self.tenants[name] = entry
        return entry


class EquivalenceServer:
    """The traffic-serving front of the whole library.

    Lifecycle: construct with a :class:`ServeConfig`, ``await
    start()`` (binds the socket, spawns the worker slots, replays the
    journal), then either let the surrounding loop run or call
    :meth:`serve_forever`.  ``await stop()`` drains gracefully;
    ``await stop(abort=True)`` simulates a crash — workers are killed
    mid-job and the journal keeps the ``start``-without-``done``
    evidence a restarted server reports as ``lost``.

    For synchronous callers (tests, docs, notebooks) the
    :meth:`start_background`/:meth:`stop_background` pair runs the
    whole server on a private event loop in a daemon thread.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 **overrides):
        if config is None:
            config = ServeConfig()
        for name, value in overrides.items():
            if not hasattr(config, name):
                raise TypeError("unknown config field %r" % name)
            setattr(config, name, value)
        self.config = config
        self.tracer: Optional[Tracer] = Tracer() \
            if config.trace_path else None
        self.jobs: Dict[str, JobState] = {}
        self.stats = _Stats()
        self._scheduler = FairScheduler(
            max_queued=config.queue,
            max_queued_per_tenant=config.tenant_queue)
        self._executor = JobExecutor(slots=config.jobs,
                                     timeout=config.timeout)
        self._store: Optional[JobStore] = None
        self._http: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._job_tasks: set = set()
        self._work = asyncio.Event()
        self._seq = 0
        self._dispatch_counter = 0
        self._done_order: List[str] = []
        self._started_monotonic = 0.0
        self._stopping = False
        self._aborting = False
        self._thread: Optional[threading.Thread] = None
        self._thread_loop: Optional[asyncio.AbstractEventLoop] = None
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind, spawn workers, replay the journal; returns the bound
        ``(host, port)`` (useful with the ephemeral ``port=0``)."""
        cfg = self.config
        self._started_monotonic = time.monotonic()
        replayed = JobStore.replay(cfg.journal)
        self._store = JobStore(cfg.journal)
        self._seq = JobStore.max_seq(replayed)
        await self._executor.start()
        for old in replayed:
            state = JobState(old.spec, old.seq)
            self.jobs[old.spec.id] = state
            if old.status == "done":
                state.status = "done"
                state.record = old.record
                state.emit("done", outcome=old.record.outcome,
                           replayed=True)
            elif old.status == "lost":
                state.status = "lost"
                state.detail = ("server restarted while this job was "
                                "executing; resubmit to re-run")
                state.emit("lost", replayed=True)
            else:  # queued at shutdown: resume it
                try:
                    self._scheduler.submit(old.spec)
                except QueueFull:
                    # Replay must honor the same admission caps as live
                    # traffic: a journal holding more queued jobs than
                    # --queue allows (caps lowered across the restart,
                    # or a torn shutdown) must not overshoot them.
                    state.status = "lost"
                    state.detail = ("restart could not re-admit this "
                                    "job (admission queue full); "
                                    "resubmit to re-run")
                    # Journal a start-without-done so the job stays
                    # lost across further restarts — the client was
                    # told to resubmit, so resurrecting the original
                    # later would run it twice.
                    self._store.record_start(old.spec.id)
                    state.emit("lost", replayed=True)
                else:
                    state.emit("queued", resumed=True)
                    self._work.set()
        self._http = await asyncio.start_server(
            self._handle_conn, cfg.host, cfg.port)
        sockname = self._http.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self.address

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``__main__`` entry point)."""
        if self._http is None:
            await self.start()
        await self._http.serve_forever()

    async def stop(self, abort: bool = False) -> None:
        """Drain and shut down; ``abort=True`` kills workers mid-job
        (crash semantics, for testing restart recovery)."""
        self._stopping = True
        if abort:
            self._aborting = True
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
            self._http = None
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if abort:
            self._executor.abort()
        if self._job_tasks:
            await asyncio.gather(*tuple(self._job_tasks),
                                 return_exceptions=True)
        await asyncio.to_thread(self._executor.close)
        if self._store is not None:
            self._store.close()
            self._store = None
        if self.tracer is not None and self.config.trace_path:
            try:
                write_jsonl(self.tracer.events, self.config.trace_path)
            except OSError:
                pass

    # -- background-thread convenience ---------------------------------

    def start_background(self, timeout: float = 60.0)\
            -> Tuple[str, int]:
        """Run the server on a private event loop in a daemon thread;
        returns the bound address.  The synchronous twin of
        :meth:`start` for tests, docs and notebooks."""
        if self._thread is not None:
            raise RuntimeError("server already running in background")
        ready = threading.Event()
        outcome: Dict[str, object] = {}

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._thread_loop = loop
            try:
                outcome["address"] = loop.run_until_complete(
                    self.start())
            except BaseException as exc:  # surface in the caller
                outcome["error"] = exc
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("server did not start within %.0fs"
                               % timeout)
        if "error" in outcome:
            self._thread.join(5.0)
            self._thread = None
            raise outcome["error"]  # type: ignore[misc]
        return outcome["address"]  # type: ignore[return-value]

    def stop_background(self, abort: bool = False,
                        timeout: float = 60.0) -> None:
        """Stop a :meth:`start_background` server and join its thread."""
        loop, thread = self._thread_loop, self._thread
        if loop is None or thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.stop(abort),
                                                  loop)
        try:
            future.result(timeout)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout)
            self._thread = None
            self._thread_loop = None

    # -- scheduling ----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._work.wait()
            if self._scheduler.depth == 0:
                self._work.clear()
                continue
            # Wait for a slot *before* popping: a queued job must stay
            # in the scheduler until the moment it can actually run, so
            # admission bounds and the fair-share rotation see the true
            # backlog.
            pool = await self._executor.acquire()
            queued = self._scheduler.next_job()
            if queued is None:  # drained while we waited for the slot
                self._executor.release(pool)
                self._work.clear()
                continue
            task = asyncio.create_task(self._run_job(pool, queued))
            self._job_tasks.add(task)
            task.add_done_callback(self._job_tasks.discard)

    async def _run_job(self, pool, queued: QueuedJob) -> None:
        spec = queued.spec
        state = self.jobs[spec.id]
        self._dispatch_counter += 1
        state.dispatch_seq = self._dispatch_counter
        state.status = "running"
        state.queue_seconds = round(
            time.monotonic() - queued.enqueued_at, 6)
        if self._store is not None:
            self._store.record_start(spec.id)
        state.emit("started", dispatch_seq=state.dispatch_seq,
                   queue_seconds=state.queue_seconds)
        started = time.monotonic()
        try:
            record = await self._executor.run(pool, spec)
        finally:
            self._executor.release(pool)
            self._work.set()  # a freed slot may unblock queued work
        if self._aborting:
            return  # crash semantics: leave the journal without "done"
        self._finish_job(state, record,
                         execute_seconds=time.monotonic() - started)

    def _finish_job(self, state: JobState, record: JobRecord,
                    execute_seconds: float) -> None:
        spec = state.spec
        state.record = record
        state.status = "done"
        if self._store is not None:
            self._store.record_done(spec.id, record)
        self._scheduler.observe_seconds(record.seconds)
        self.stats.completed += 1
        if record.outcome == "timeout":
            self.stats.timeouts += 1
        elif record.outcome == "error":
            self.stats.failed += 1
        self.stats.cache_hits += record.cache_hits
        self.stats.cache_misses += record.cache_misses
        self.stats.cache_stores += record.cache_stores
        self.stats.tenant(spec.tenant)["completed"] += 1
        if self.tracer is not None:
            queue_seconds = state.queue_seconds or 0.0
            self.tracer.complete("job:queued", queue_seconds,
                                 tenant=spec.tenant, job=spec.id)
            self.tracer.complete("job:execute", execute_seconds,
                                 tenant=spec.tenant, job=spec.id,
                                 outcome=record.outcome,
                                 cached=record.cached)
            self.tracer.complete("job", queue_seconds + execute_seconds,
                                 tenant=spec.tenant, job=spec.id,
                                 outcome=record.outcome)
        state.emit("done", outcome=record.outcome,
                   refuted=record.refuted, cached=record.cached,
                   seconds=record.seconds)
        self._done_order.append(spec.id)
        while len(self._done_order) > self.config.retain:
            evicted = self._done_order.pop(0)
            self.jobs.pop(evicted, None)

    # -- submission ----------------------------------------------------

    def _new_job_id(self, fields: Dict) -> Tuple[int, str]:
        self._seq += 1
        digest = hashlib.sha256()
        for key in ("spec_text", "impl_text", "tenant"):
            digest.update(str(fields[key]).encode("utf-8"))
            digest.update(b"\x1f")
        return self._seq, "j%06d-%s" % (self._seq,
                                        digest.hexdigest()[:8])

    async def _submit(self, body: bytes) -> Tuple[int, Dict, Dict]:
        cfg = self.config
        fields = protocol.parse_submit(
            body, defaults={"patterns": cfg.patterns,
                            "checks": CHECK_ORDER})
        tenant = fields.pop("tenant")
        if self._scheduler.depth >= self._scheduler.max_queued:
            # Cheap pre-check: reject before paying the parse+lint.
            raise QueueFull("admission queue is full",
                            retry_after=self._scheduler.retry_after())
        # Parse + lint off the event loop; malformed input never
        # reaches a worker.
        await asyncio.to_thread(protocol.load_pair, fields)
        seq, job_id = self._new_job_id(dict(fields, tenant=tenant))
        spec = JobSpec(id=job_id, tenant=tenant,
                       fmt=fields["fmt"],
                       spec_text=fields["spec_text"],
                       impl_text=fields["impl_text"],
                       boxes=tuple(fields["boxes"]),
                       checks=fields["checks"],
                       patterns=fields["patterns"],
                       seed=fields["seed"],
                       preflight=fields["preflight"] or cfg.preflight,
                       cache_dir=cfg.cache_dir,
                       node_limit=cfg.node_limit,
                       soft_timeout=cfg.soft_timeout)
        self._scheduler.submit(spec)  # may raise QueueFull
        state = JobState(spec, seq)
        self.jobs[job_id] = state
        if self._store is not None:
            self._store.record_submit(spec, seq)
        self.stats.submitted += 1
        self.stats.tenant(tenant)["submitted"] += 1
        state.emit("queued", tenant=tenant)
        self._work.set()
        return 202, state.view(), {}

    # -- HTTP plumbing -------------------------------------------------

    async def _read_request(self, reader: asyncio.StreamReader)\
            -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None
        if len(line) > _MAX_LINE:
            raise ProtocolError(400, "request line too long")
        try:
            method, target, _version = \
                line.decode("latin-1").strip().split(" ", 2)
        except ValueError:
            raise ProtocolError(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS + 1):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(line) > _MAX_LINE:
                raise ProtocolError(400, "header line too long")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ProtocolError(400, "too many headers")
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                size = int(length)
            except ValueError:
                raise ProtocolError(
                    400, "bad Content-Length") from None
            if size > protocol.MAX_BODY_BYTES:
                raise ProtocolError(413, "request body exceeds %d "
                                    "bytes" % protocol.MAX_BODY_BYTES)
            body = await reader.readexactly(size)
        return method.upper(), target, headers, body

    @staticmethod
    def _response_bytes(status: int, payload: Dict,
                        extra_headers: Optional[Dict] = None) -> bytes:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        lines = ["HTTP/1.1 %d %s" % (status,
                                     _REASONS.get(status, "Unknown")),
                 "Content-Type: application/json",
                 "Content-Length: %d" % len(body),
                 "Connection: close"]
        for name, value in (extra_headers or {}).items():
            lines.append("%s: %s" % (name, value))
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") \
            + body

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        status = 500
        method = target = "-"
        tenant = None
        try:
            try:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, target, _headers, body = request
                status = await self._route(method, target, body,
                                           writer)
                if isinstance(body, bytes) and method == "POST":
                    try:
                        tenant = json.loads(
                            body.decode("utf-8")).get("tenant")
                    except (ValueError, AttributeError,
                            UnicodeDecodeError):
                        tenant = None
            except ProtocolError as exc:
                status = exc.status
                self.stats.rejected_invalid += 1
                writer.write(self._response_bytes(exc.status,
                                                  exc.body()))
                await writer.drain()
            except QueueFull as exc:
                status = 429
                self.stats.rejected_queue_full += 1
                retry = int(math.ceil(exc.retry_after))
                writer.write(self._response_bytes(
                    429, {"error": str(exc),
                          "retry_after": exc.retry_after},
                    {"Retry-After": str(retry)}))
                await writer.drain()
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:  # pragma: no cover - last resort
                writer.write(self._response_bytes(
                    500, {"error": "%s: %s"
                          % (type(exc).__name__, exc)}))
                await writer.drain()
        finally:
            self.stats.requests += 1
            if self.tracer is not None:
                self.tracer.instant("http", method=method, path=target,
                                    status=status,
                                    **({"tenant": tenant}
                                       if tenant else {}))
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, method: str, target: str, body: bytes,
                     writer: asyncio.StreamWriter) -> int:
        path = target.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return await self._send(writer, 200, self._healthz())
        if path == "/stats" and method == "GET":
            return await self._send(writer, 200, self._stats_view())
        if path == "/v1/jobs":
            if method != "POST":
                return await self._send(
                    writer, 405, {"error": "use POST to submit"})
            if self._stopping:
                return await self._send(
                    writer, 503, {"error": "server is shutting down"})
            status, payload, headers = await self._submit(body)
            return await self._send(writer, status, payload, headers)
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                job_id, streaming = rest[:-len("/events")], True
            else:
                job_id, streaming = rest, False
            state = self.jobs.get(job_id)
            if state is None:
                return await self._send(
                    writer, 404,
                    {"error": "unknown job %r (completed jobs are "
                              "retained for the last %d)"
                              % (job_id, self.config.retain)})
            if method != "GET":
                return await self._send(writer, 405,
                                        {"error": "use GET"})
            if streaming:
                await self._stream_events(state, writer)
                return 200
            return await self._send(writer, 200, state.view())
        return await self._send(writer, 404,
                                {"error": "no route for %s %s"
                                 % (method, target)})

    async def _send(self, writer: asyncio.StreamWriter, status: int,
                    payload: Dict,
                    headers: Optional[Dict] = None) -> int:
        writer.write(self._response_bytes(status, payload, headers))
        await writer.drain()
        return status

    async def _stream_events(self, state: JobState,
                             writer: asyncio.StreamWriter) -> None:
        """Newline-delimited JSON progress until the job is terminal."""
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1"))
        sent = 0
        while True:
            while sent < len(state.events):
                writer.write((json.dumps(state.events[sent],
                                         sort_keys=True)
                              + "\n").encode("utf-8"))
                sent += 1
            await writer.drain()
            if state.terminal and sent >= len(state.events):
                return
            waiter = state.changed
            await waiter.wait()

    # -- views ---------------------------------------------------------

    def _healthz(self) -> Dict:
        return {"status": "ok", "protocol": PROTOCOL_VERSION,
                "uptime_seconds": round(
                    time.monotonic() - self._started_monotonic, 3),
                "slots": {"total": self.config.jobs,
                          "idle": self._executor.idle_slots},
                "queue_depth": self._scheduler.depth}

    def _cache_view(self) -> Dict:
        view = {"hits": self.stats.cache_hits,
                "misses": self.stats.cache_misses,
                "stores": self.stats.cache_stores}
        if self.config.cache_dir:
            from ..analysis.static.cache import CheckCache

            info = CheckCache(self.config.cache_dir).info()
            view["entries"] = info["entries"]
            view["bytes"] = info["bytes"]
        return view

    def _stats_view(self) -> Dict:
        running = sum(1 for state in self.jobs.values()
                      if state.status == "running")
        tenants: Dict[str, Dict] = {}
        depths = self._scheduler.tenant_depths()
        for name, entry in self.stats.tenants.items():
            tenants[name] = dict(entry, queued=depths.get(name, 0))
        return {"uptime_seconds": round(
                    time.monotonic() - self._started_monotonic, 3),
                "requests": self.stats.requests,
                "jobs": {"submitted": self.stats.submitted,
                         "completed": self.stats.completed,
                         "failed": self.stats.failed,
                         "timeouts": self.stats.timeouts,
                         "running": running,
                         "queued": self._scheduler.depth,
                         "rejected_queue_full":
                             self.stats.rejected_queue_full,
                         "rejected_invalid":
                             self.stats.rejected_invalid},
                "scheduler": {"max_queued": self._scheduler.max_queued,
                              "max_queued_per_tenant":
                                  self._scheduler.max_queued_per_tenant,
                              "retry_after":
                                  self._scheduler.retry_after()},
                "cache": self._cache_view(),
                "tenants": tenants,
                "journal": {"path": self.config.journal,
                            "write_errors":
                                self._store.write_errors
                                if self._store else 0}}
