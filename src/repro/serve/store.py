"""Durable job journal: the service survives restarts honestly.

One append-only JSONL file (the atomic-line machinery of
:class:`repro.jobs.journal.LineJournalWriter`, so a server killed at
any instant leaves at most one truncated tail line) records the
lifecycle of every job as events::

    {"v": 1, "ev": "submit", "job": "j000001-d41d8cd9",
     "seq": 1, "tenant": "alice", "spec": {...full JobSpec...}}
    {"v": 1, "ev": "start",  "job": "j000001-d41d8cd9"}
    {"v": 1, "ev": "done",   "job": "j000001-d41d8cd9",
     "record": {...full JobRecord...}}

:func:`JobStore.replay` folds the journal back into three classes a
restarted server acts on:

* ``done`` — the verdict is on disk; served straight from the journal.
* ``queued`` — submitted but never started; **re-enqueued** (the
  submission carries everything needed to run it).
* ``lost`` — started but never finished: the server died mid-job.
  Reported faithfully as such (the client must resubmit; silently
  re-running a job that may have had side effects once is worse).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..jobs.journal import LineJournalWriter, iter_journal_dicts
from .executor import JobRecord, JobSpec

__all__ = ["STORE_VERSION", "ReplayedJob", "JobStore"]

STORE_VERSION = 1


class ReplayedJob:
    """One job's state as reconstructed from the journal."""

    __slots__ = ("spec", "seq", "status", "record")

    def __init__(self, spec: JobSpec, seq: int, status: str,
                 record: Optional[JobRecord] = None):
        self.spec = spec
        self.seq = seq
        self.status = status  # "queued" | "lost" | "done"
        self.record = record


class JobStore:
    """Append-only journal of job lifecycle events (optional).

    With ``path=None`` the store is inert: every record call is a
    no-op and replay yields nothing — the server simply runs
    in-memory.  Journal write failures after open degrade the same
    way a full trace directory does: the job still runs, durability is
    lost, and the problem surfaces in the server log once.
    """

    def __init__(self, path: Optional[str]):
        self.path = path
        self._writer: Optional[LineJournalWriter] = None
        self.write_errors = 0
        if path:
            self._writer = LineJournalWriter(path)

    # -- replay (before the writer position matters) -------------------

    @staticmethod
    def replay(path: Optional[str]) -> List[ReplayedJob]:
        """Fold an existing journal into per-job states, journal order.

        Unknown event kinds and malformed entries are skipped — the
        store must tolerate journals written by newer versions the
        same way the campaign journal reader tolerates torn tails.
        """
        if not path or not os.path.exists(path):
            return []
        jobs: Dict[str, ReplayedJob] = {}
        for event in iter_journal_dicts(path):
            if event.get("v") != STORE_VERSION:
                continue
            job_id = event.get("job")
            kind = event.get("ev")
            if not isinstance(job_id, str):
                continue
            try:
                if kind == "submit":
                    spec = JobSpec.from_dict(event["spec"])
                    jobs[job_id] = ReplayedJob(
                        spec, int(event.get("seq", 0)), "queued")
                elif kind == "start" and job_id in jobs:
                    jobs[job_id].status = "lost"
                elif kind == "done" and job_id in jobs:
                    jobs[job_id].status = "done"
                    jobs[job_id].record = JobRecord.from_dict(
                        event["record"])
            except (KeyError, TypeError, ValueError):
                continue
        return list(jobs.values())

    @staticmethod
    def max_seq(jobs: List[ReplayedJob]) -> int:
        """Highest journaled sequence number (id allocation resumes
        above it)."""
        return max((job.seq for job in jobs), default=0)

    # -- recording -----------------------------------------------------

    def _append(self, payload: Dict) -> None:
        if self._writer is None:
            return
        try:
            self._writer.write_line(payload)
        except OSError:
            # Durability is best-effort; the server keeps serving.
            self.write_errors += 1

    def record_submit(self, spec: JobSpec, seq: int) -> None:
        self._append({"v": STORE_VERSION, "ev": "submit",
                      "job": spec.id, "seq": seq,
                      "tenant": spec.tenant, "spec": spec.to_dict()})

    def record_start(self, job_id: str) -> None:
        self._append({"v": STORE_VERSION, "ev": "start",
                      "job": job_id})

    def record_done(self, job_id: str, record: JobRecord) -> None:
        self._append({"v": STORE_VERSION, "ev": "done", "job": job_id,
                      "record": record.to_dict()})

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
