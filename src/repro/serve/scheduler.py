"""Admission control and per-tenant fair-share dispatch.

The scheduler is a plain synchronous data structure — the server's
single event loop is the only caller, so no locking is needed.  Two
knobs bound the queue:

* ``max_queued`` — global admission bound.  A submission beyond it is
  rejected; the server turns that into HTTP 429 with a computed
  ``Retry-After``.
* ``max_queued_per_tenant`` — one tenant cannot occupy the whole
  queue (defaults to half of ``max_queued``, at least 1), so a tenant
  flooding the service still leaves room for everyone else.

Dispatch is round-robin over the tenants that have queued work: after
serving tenant T, every *other* backlogged tenant is served once
before T is served again.  With ``t`` active tenants a queued job
therefore waits at most ``(its position in its tenant's queue) * t``
dispatches — bounded starvation, demonstrated in ``tests/serve``.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

from .executor import JobSpec

__all__ = ["QueueFull", "QueuedJob", "FairScheduler"]


class QueueFull(Exception):
    """Admission rejected; ``retry_after`` is the client's backoff
    hint in seconds (the server sends it as ``Retry-After``)."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class QueuedJob:
    """One admitted job and its queue timestamps."""

    __slots__ = ("spec", "enqueued_at")

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.enqueued_at = time.monotonic()


class FairScheduler:
    """Bounded per-tenant FIFO queues with round-robin dispatch."""

    def __init__(self, max_queued: int = 64,
                 max_queued_per_tenant: Optional[int] = None):
        if max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        self.max_queued = int(max_queued)
        if max_queued_per_tenant is None:
            max_queued_per_tenant = max(1, self.max_queued // 2)
        self.max_queued_per_tenant = int(max_queued_per_tenant)
        #: tenant -> FIFO of queued jobs; insertion order doubles as
        #: the round-robin rotation order (OrderedDict.move_to_end).
        self._queues: "OrderedDict[str, Deque[QueuedJob]]" \
            = OrderedDict()
        self._depth = 0
        #: Rolling mean of recent job wall seconds, fed back by the
        #: server; sizes the Retry-After hint.
        self._mean_seconds = 1.0

    # -- admission -----------------------------------------------------

    def __len__(self) -> int:
        return self._depth

    @property
    def depth(self) -> int:
        """Jobs currently queued (not yet dispatched)."""
        return self._depth

    def tenant_depths(self) -> Dict[str, int]:
        """Queued jobs per tenant (only tenants with backlog)."""
        return {tenant: len(queue)
                for tenant, queue in self._queues.items() if queue}

    def observe_seconds(self, seconds: float) -> None:
        """Feed one completed job's wall time into the backoff hint."""
        self._mean_seconds += 0.2 * (max(seconds, 0.01)
                                     - self._mean_seconds)

    def retry_after(self) -> float:
        """Backoff hint: roughly one queue drain of headroom."""
        backlog = max(1, self._depth)
        return round(min(60.0, max(1.0,
                                   backlog * self._mean_seconds)), 1)

    def submit(self, spec: JobSpec) -> QueuedJob:
        """Admit one job, or raise :class:`QueueFull` (global or
        per-tenant bound)."""
        if self._depth >= self.max_queued:
            raise QueueFull(
                "admission queue is full (%d jobs)" % self._depth,
                retry_after=self.retry_after())
        queue = self._queues.get(spec.tenant)
        if queue is not None \
                and len(queue) >= self.max_queued_per_tenant:
            raise QueueFull(
                "tenant %r already has %d queued jobs"
                % (spec.tenant, len(queue)),
                retry_after=self.retry_after())
        if queue is None:
            queue = deque()
            self._queues[spec.tenant] = queue
        job = QueuedJob(spec)
        queue.append(job)
        self._depth += 1
        return job

    # -- dispatch ------------------------------------------------------

    def next_job(self) -> Optional[QueuedJob]:
        """Pop the next job fair-share-wise, or ``None`` when idle.

        The serving tenant rotates to the back of the order, so each
        backlogged tenant is served once per round.
        """
        for tenant in list(self._queues):
            queue = self._queues[tenant]
            if not queue:
                # Drop empty queues lazily so the rotation only walks
                # tenants with actual backlog.
                del self._queues[tenant]
                continue
            job = queue.popleft()
            self._depth -= 1
            if queue:
                self._queues.move_to_end(tenant)
            else:
                del self._queues[tenant]
            return job
        return None

    def drain(self) -> Dict[str, int]:
        """Drop every queued job (shutdown); returns per-tenant
        counts of what was dropped."""
        dropped = {tenant: len(queue)
                   for tenant, queue in self._queues.items() if queue}
        self._queues.clear()
        self._depth = 0
        return dropped
