"""Job execution: the service's work unit on the spawn worker pool.

A submitted pair runs in a child process of :class:`repro.jobs.pool`
— never in the server process — so a wedged check (pure-Python BDD
operations cannot be interrupted in-process) is killed with SIGKILL at
the hard deadline and the event loop stays responsive no matter what a
tenant submits.  The pool's wire protocol is pluggable
(:class:`~repro.jobs.pool.CaseCodec`); this module provides the
service flavor: :class:`JobSpec` in, :class:`JobRecord` out, with
:func:`execute_job` as the importable task spawned children resolve.

:class:`JobExecutor` is the parent-side front: a service-flavored
:class:`repro.fleet.slots.SlotFleet` — one single-slot
:class:`~repro.jobs.pool.WorkerPool` per configured job slot, behind
an async idle queue.  Each slot keeps its worker process alive across
jobs (spawn cost is paid once at server start), jobs dispatch the
moment a slot frees, and the fleet substrate throttles a
crash-looping slot with deterministic backoff so a poisoned tenant
burns its own latency, not the host's respawn budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.result import (OUTCOME_ERROR, OUTCOME_INCONCLUSIVE,
                           OUTCOME_OK, OUTCOME_TIMEOUT)
from ..fleet.slots import SlotFleet
from ..jobs.pool import WorkerPool
from ..resilience.backoff import BackoffPolicy

__all__ = ["JobSpec", "JobRecord", "ServeCodec", "execute_job",
           "JobExecutor"]

_OUTCOME_RANK = {OUTCOME_OK: 0, OUTCOME_INCONCLUSIVE: 1,
                 OUTCOME_TIMEOUT: 2, OUTCOME_ERROR: 2}


@dataclass(frozen=True)
class JobSpec:
    """Everything a worker needs to execute one submission from
    scratch in a fresh process: the netlist texts, the Black Box
    interfaces, the selected checks, and the server-assigned budgets
    and cache mount."""

    id: str
    tenant: str
    fmt: str
    spec_text: str
    impl_text: str
    boxes: Tuple[Dict, ...]
    checks: Tuple[str, ...]
    patterns: int = 1000
    seed: Optional[int] = None
    preflight: bool = False
    cache_dir: Optional[str] = None
    node_limit: Optional[int] = None
    soft_timeout: Optional[float] = None

    def to_dict(self) -> Dict:
        return {"id": self.id, "tenant": self.tenant, "fmt": self.fmt,
                "spec_text": self.spec_text,
                "impl_text": self.impl_text,
                "boxes": list(self.boxes),
                "checks": list(self.checks),
                "patterns": self.patterns, "seed": self.seed,
                "preflight": self.preflight,
                "cache_dir": self.cache_dir,
                "node_limit": self.node_limit,
                "soft_timeout": self.soft_timeout}

    @classmethod
    def from_dict(cls, data: Dict) -> "JobSpec":
        return cls(id=data["id"], tenant=data["tenant"],
                   fmt=data["fmt"], spec_text=data["spec_text"],
                   impl_text=data["impl_text"],
                   boxes=tuple(data.get("boxes", [])),
                   checks=tuple(data["checks"]),
                   patterns=int(data.get("patterns", 1000)),
                   seed=data.get("seed"),
                   preflight=bool(data.get("preflight", False)),
                   cache_dir=data.get("cache_dir"),
                   node_limit=data.get("node_limit"),
                   soft_timeout=data.get("soft_timeout"))


@dataclass
class JobRecord:
    """The executed job's complete, JSON-ready outcome.

    ``verdict`` and ``checks`` are the replayable part: on a warm
    cache hit they are byte-identical to the cold run that filled the
    cache (each check's ``seconds`` is the *original* measurement).
    ``seconds`` (job wall time), ``cache`` traffic and the per-check
    ``cached`` flags describe *this* execution and legitimately differ
    between a cold run and its warm replay.
    """

    id: str
    outcome: str = OUTCOME_OK
    refuted: bool = False
    exact: bool = False
    cached: bool = False
    checks: List[Dict] = field(default_factory=list)
    failing_output: Optional[str] = None
    counterexample: Optional[Dict[str, bool]] = None
    error: str = ""
    seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    worker: int = 0
    attempt: int = 1

    def verdict(self) -> Dict:
        """The deterministic, replayable slice of the outcome."""
        return {"outcome": self.outcome, "refuted": self.refuted,
                "exact": self.exact,
                "failing_output": self.failing_output,
                "counterexample": self.counterexample,
                "checks": [
                    {k: v for k, v in check.items() if k != "cached"}
                    for check in self.checks]}

    def to_dict(self) -> Dict:
        return {"id": self.id, "outcome": self.outcome,
                "refuted": self.refuted, "exact": self.exact,
                "cached": self.cached, "checks": list(self.checks),
                "failing_output": self.failing_output,
                "counterexample": self.counterexample,
                "error": self.error, "seconds": self.seconds,
                "cache": {"hits": self.cache_hits,
                          "misses": self.cache_misses,
                          "stores": self.cache_stores},
                "worker": self.worker, "attempt": self.attempt}

    @classmethod
    def from_dict(cls, data: Dict) -> "JobRecord":
        cache = data.get("cache", {})
        return cls(id=data["id"], outcome=data["outcome"],
                   refuted=bool(data.get("refuted", False)),
                   exact=bool(data.get("exact", False)),
                   cached=bool(data.get("cached", False)),
                   checks=list(data.get("checks", [])),
                   failing_output=data.get("failing_output"),
                   counterexample=data.get("counterexample"),
                   error=data.get("error", ""),
                   seconds=float(data.get("seconds", 0.0)),
                   cache_hits=int(cache.get("hits", 0)),
                   cache_misses=int(cache.get("misses", 0)),
                   cache_stores=int(cache.get("stores", 0)),
                   worker=int(data.get("worker", 0)),
                   attempt=int(data.get("attempt", 1)))


def _failed_job(job: JobSpec, error: BaseException, seconds: float = 0.0,
                worker: int = 0, attempt: int = 1) -> JobRecord:
    """Terminal record: the job (or its worker) crashed."""
    return JobRecord(id=job.id, outcome=OUTCOME_ERROR,
                     error="%s: %s" % (type(error).__name__, error),
                     seconds=seconds, worker=worker, attempt=attempt)


def _timeout_job(job: JobSpec, seconds: float, worker: int = 0,
                 attempt: int = 1) -> JobRecord:
    """Terminal record: the worker was SIGKILLed at the hard deadline."""
    return JobRecord(id=job.id, outcome=OUTCOME_TIMEOUT,
                     error="killed after %.1fs at the per-job "
                           "deadline" % seconds,
                     seconds=seconds, worker=worker, attempt=attempt)


class ServeCodec:
    """Service wire protocol for :class:`repro.jobs.pool.WorkerPool`."""

    decode_case = staticmethod(JobSpec.from_dict)
    decode_record = staticmethod(JobRecord.from_dict)
    failed = staticmethod(_failed_job)
    timeout = staticmethod(_timeout_job)


def _check_dict(result) -> Dict:
    """JSON-ready view of one ladder rung's :class:`CheckResult`."""
    return {"check": result.check, "outcome": result.outcome,
            "error_found": result.error_found, "exact": result.exact,
            "seconds": result.seconds, "detail": result.detail,
            "failing_output": result.failing_output,
            "counterexample": result.counterexample,
            "cached": result.stats.get("check_cache") == "hit"}


def execute_job(job: JobSpec) -> JobRecord:
    """Run one submission's check ladder (worker-process side).

    Never raises for per-job problems: anything wrong with the
    submission or the checks becomes a terminal ERROR record (the
    last-resort guard in the pool's child loop catches the rest).
    Heavy imports happen here, not at module import, to keep the
    spawned child's startup cost down until its first job.
    """
    from ..core.ladder import run_ladder
    from ..resilience.budget import Budget
    from .protocol import ProtocolError, load_pair

    start = time.perf_counter()
    try:
        spec, partial = load_pair({
            "fmt": job.fmt, "spec_text": job.spec_text,
            "impl_text": job.impl_text, "boxes": list(job.boxes)})
    except ProtocolError as exc:
        return _failed_job(job, exc,
                           seconds=time.perf_counter() - start)
    cache = None
    if job.cache_dir:
        from ..analysis.static.cache import CheckCache

        cache = CheckCache(job.cache_dir)
    budget = Budget.from_limits(node_limit=job.node_limit,
                                soft_timeout=job.soft_timeout)
    try:
        results = run_ladder(spec, partial, checks=job.checks,
                             patterns=job.patterns, seed=job.seed,
                             budget=budget, preflight=job.preflight,
                             cache=cache)
    except Exception as exc:
        return _failed_job(job, exc,
                           seconds=time.perf_counter() - start)
    checks = [_check_dict(result) for result in results]
    outcome = OUTCOME_OK
    for result in results:
        if _OUTCOME_RANK.get(result.outcome, 2) \
                > _OUTCOME_RANK[outcome]:
            outcome = result.outcome if result.outcome \
                in _OUTCOME_RANK else OUTCOME_ERROR
    refuted = any(r.error_found for r in results
                  if r.outcome == OUTCOME_OK)
    witness = next((r for r in results
                    if r.error_found and r.outcome == OUTCOME_OK), None)
    exact = bool(results) and results[-1].exact and not refuted \
        and outcome == OUTCOME_OK
    record = JobRecord(
        id=job.id, outcome=outcome, refuted=refuted, exact=exact,
        cached=bool(checks) and all(c["cached"] for c in checks),
        checks=checks,
        failing_output=witness.failing_output if witness else None,
        counterexample=witness.counterexample if witness else None,
        seconds=time.perf_counter() - start)
    if cache is not None:
        stats = cache.stats()
        record.cache_hits = stats["hits"]
        record.cache_misses = stats["misses"]
        record.cache_stores = stats["stores"]
    return record


class JobExecutor(SlotFleet):
    """The service's :class:`~repro.fleet.slots.SlotFleet` flavor.

    The scheduler acquires a slot, runs exactly one job on it (in a
    thread, because :meth:`WorkerPool.run` blocks), and releases it.
    The per-slot worker process survives across jobs; a hard-deadline
    kill or a crash costs that slot one respawn (handled inside the
    pool) plus a fleet-governed backoff sleep while the slot is still
    held, so a crash loop cannot hot-spin worker spawns.
    """

    def __init__(self, slots: int, timeout: Optional[float] = None,
                 tracer=None):
        super().__init__(slots=slots, timeout=timeout,
                         task=execute_job, codec=ServeCodec,
                         backoff=BackoffPolicy(base=0.05,
                                               multiplier=2.0,
                                               cap=5.0, jitter=0.25,
                                               seed=11),
                         tracer=tracer)

    async def run(self, pool: WorkerPool, job: JobSpec) -> JobRecord:
        """Execute ``job`` on an acquired slot."""
        record = await super().run(pool, job)
        if record is None:  # aborted mid-job (server shutdown)
            return _failed_job(job, RuntimeError("server shut down "
                                                 "mid-job"))
        return record
