"""High-level facade: one object for the whole BBEC workflow.

:class:`BlackBoxChecker` binds a specification and offers the complete
workflow of the paper as methods: run the ladder, run single checks,
synthesize witness boxes, verify error-location hypotheses.  The
functional APIs in :mod:`repro.core` remain the primitive layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .analysis.diagnostics import LintReport

from .circuit.netlist import Circuit, CircuitError
from .core.diagnosis import DiagnosisResult, verify_error_location
from .core.equivalence import EquivalenceResult, check_equivalence
from .core.input_exact import check_input_exact
from .core.ladder import CHECK_ORDER, run_ladder
from .core.local_check import check_local
from .core.output_exact import check_output_exact
from .core.random_pattern import check_random_patterns
from .core.result import CheckResult
from .core.symbolic01x import check_symbolic_01x
from .core.synthesis import synthesize_boxes
from .partial.blackbox import PartialImplementation
from .partial.extraction import make_partial

__all__ = ["BlackBoxChecker"]

_CHECKERS = {
    "random_pattern": check_random_patterns,
    "symbolic_01x": check_symbolic_01x,
    "local": check_local,
    "output_exact": check_output_exact,
    "input_exact": check_input_exact,
}


class BlackBoxChecker:
    """All Black Box Equivalence Checking workflows against one spec.

    Example::

        checker = BlackBoxChecker(spec)
        partial = checker.carve(fraction=0.1, seed=1)
        results = checker.check(partial)
        if not results[-1].error_found:
            boxes = checker.synthesize(partial)
    """

    def __init__(self, spec: Circuit) -> None:
        if spec.free_nets():
            raise CircuitError("the specification must be complete")
        spec.validate()
        self.spec = spec

    # -- building partial implementations -------------------------------

    def carve(self, fraction: float = 0.1, num_boxes: int = 1,
              seed: Optional[int] = None) -> PartialImplementation:
        """Randomly box a fraction of the spec's gates (experiments)."""
        return make_partial(self.spec, fraction=fraction,
                            num_boxes=num_boxes, seed=seed)

    # -- checking ---------------------------------------------------------

    def lint(self, partial: PartialImplementation) -> "LintReport":
        """Static pre-flight analysis of a partial implementation.

        Runs the full netlist + Black-Box rule set of
        :mod:`repro.analysis` and returns the report; :meth:`check`
        attaches the same findings to every
        :class:`~repro.core.result.CheckResult`.
        """
        from .analysis.lint import lint_partial

        return lint_partial(partial)

    def check(self, partial: PartialImplementation,
              checks: Sequence[str] = CHECK_ORDER,
              patterns: int = 1000, seed: Optional[int] = None,
              stop_at_first_error: bool = True,
              budget=None, preflight: bool = False,
              cache=None) -> List[CheckResult]:
        """Run the paper's ladder against this specification.

        The resource and reuse machinery threads straight through to
        :func:`~repro.core.ladder.run_ladder`: ``budget`` is a
        :class:`~repro.resilience.budget.Budget` bounding nodes/time
        per check, ``preflight=True`` runs the static cone analysis
        first (statically decided outputs never build a BDD), and
        ``cache`` is a
        :class:`~repro.analysis.static.CheckCache` whose stored
        verdicts are replayed byte-identically instead of re-proved.
        """
        return run_ladder(self.spec, partial, checks=checks,
                          patterns=patterns, seed=seed,
                          stop_at_first_error=stop_at_first_error,
                          budget=budget, preflight=preflight,
                          cache=cache)

    def check_one(self, partial: PartialImplementation,
                  check: str = "input_exact", **kwargs) -> CheckResult:
        """Run a single named check (see ``CHECK_ORDER`` for names)."""
        try:
            checker = _CHECKERS[check]
        except KeyError:
            raise ValueError("unknown check %r (choose from %s)"
                             % (check, ", ".join(CHECK_ORDER))) from None
        return checker(self.spec, partial, **kwargs)

    def is_refuted(self, partial: PartialImplementation,
                   **kwargs) -> bool:
        """True when the design provably cannot be completed."""
        results = self.check(partial, **kwargs)
        return any(result.error_found for result in results)

    # -- beyond checking ---------------------------------------------------

    def synthesize(self, partial: PartialImplementation,
                   verify: bool = True)\
            -> Optional[Dict[str, Circuit]]:
        """Construct witness implementations for every box (or None)."""
        return synthesize_boxes(self.spec, partial, verify=verify)

    def complete(self, partial: PartialImplementation)\
            -> Optional[Circuit]:
        """Synthesize boxes and return the full, verified circuit."""
        implementations = self.synthesize(partial)
        if implementations is None:
            return None
        return partial.substitute(implementations)

    def diagnose(self, impl: Circuit,
                 suspect_gates: Sequence[str]) -> DiagnosisResult:
        """Verify an error-location hypothesis on a complete design."""
        return verify_error_location(self.spec, impl, suspect_gates)

    def equivalent(self, impl: Circuit) -> EquivalenceResult:
        """Plain equivalence check for a complete implementation."""
        return check_equivalence(self.spec, impl)

    def __repr__(self) -> str:
        return "<BlackBoxChecker spec=%s>" % self.spec.name
