#!/usr/bin/env python3
"""From existence proof to netlist: synthesizing the missing block.

Theorem 2.2 guarantees that when the single-box input exact check passes
there *is* a correct implementation for the box.  This library goes one
step further and constructs one: the relation cond'(I, O) is
determinized output by output and converted back into gates.

Here we delete the entire comparison core of a magnitude comparator and
let the checker re-derive it from the specification.

Run:  python examples/black_box_synthesis.py
"""

from repro.core import (check_equivalence, check_input_exact,
                        synthesize_single_box)
from repro.generators.comparator import magnitude_comparator
from repro.partial import make_partial


def main():
    spec = magnitude_comparator(6)
    print("Specification: %s" % spec)

    partial = make_partial(spec, fraction=0.35, num_boxes=1, seed=3)
    box = partial.boxes[0]
    print("Partial implementation: %d of %d gates deleted"
          % (spec.num_gates - partial.circuit.num_gates,
             spec.num_gates))
    print("Black Box to fill: %d inputs -> %d outputs"
          % (len(box.inputs), len(box.outputs)))

    verdict = check_input_exact(spec, partial)
    print("\nInput exact check: %s"
          % ("ERROR" if verdict.error_found else
             "no error — an implementation exists (Theorem 2.2)"))
    assert not verdict.error_found

    witness = synthesize_single_box(spec, partial)
    print("Synthesized box: %s (depth %d)"
          % (witness, witness.depth()))

    complete = partial.substitute({box.name: witness})
    proof = check_equivalence(spec, complete)
    print("Completed design vs specification: %s"
          % ("EQUIVALENT" if proof.equivalent else "MISMATCH"))
    assert proof.equivalent

    print("\nThe synthesized block need not match the deleted gates "
          "structurally —")
    print("any function satisfying the relation works; equivalence of "
          "the whole design is what was verified.")


if __name__ == "__main__":
    main()
