#!/usr/bin/env python3
"""Error-location verification (the paper's third application).

A finished implementation fails equivalence checking.  An engineer (or
an automatic diagnosis tool) suspects a region of the design.  Cutting
the suspected region into a Black Box and re-running the check decides
the hypothesis: if no error remains, the region provably explains every
misbehaviour; if an error remains, the bug (also) lives elsewhere.

The script then runs the full single-fault diagnosis loop and shows that
the true fault site is among the reported repair locations.

Run:  python examples/error_diagnosis.py
"""

import random

from repro.core import (check_equivalence, locate_single_error,
                        verify_error_location)
from repro.generators import alu4_like
from repro.partial import insert_random_error


def main():
    spec = alu4_like()
    rng = random.Random(2026)

    # Break one gate; retry until the mutation is an actual error.
    while True:
        impl, mutation = insert_random_error(spec, rng)
        verdict = check_equivalence(spec, impl)
        if not verdict.equivalent:
            break
    print("Implementation fails equivalence checking.")
    print("  (injected, unknown to the checker: %s)"
          % mutation.describe())
    print("  distinguishing input: %s\n"
          % {k: int(v) for k, v in sorted(
               verdict.counterexample.items())})

    print("Hypothesis A: the bug is inside the faulty gate's region")
    diagnosis = verify_error_location(spec, impl, [mutation.gate])
    print("  %s" % diagnosis)
    assert diagnosis.confined

    unrelated = next(
        g.output for g in impl.gates
        if g.output != mutation.gate
        and mutation.gate not in impl.cone([g.output])
        and g.output not in impl.cone([mutation.gate]))
    print("\nHypothesis B: the bug is at unrelated gate %r" % unrelated)
    diagnosis = verify_error_location(spec, impl, [unrelated])
    print("  %s" % diagnosis)
    assert not diagnosis.confined
    print("  -> refuted: boxing that gate still leaves an error.\n")

    print("Full single-fault diagnosis sweep over all %d gates..."
          % impl.num_gates)
    sites = locate_single_error(spec, impl)
    print("  candidate repair sites: %s" % ", ".join(sites))
    assert mutation.gate in sites
    print("  -> the true fault site %r is among them "
          "(others are equivalent repair points)." % mutation.gate)


if __name__ == "__main__":
    main()
