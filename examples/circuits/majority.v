// 3-input majority voter, structural Verilog subset.
module majority (a, b, c, f);
  input a;
  input b;
  input c;
  output f;
  wire t1, t2, t3;
  and g0 (t1, a, b);
  and g1 (t2, a, c);
  and g2 (t3, b, c);
  or g3 (f, t1, t2, t3);
endmodule
