#!/usr/bin/env python3
"""The paper's worked examples (Figures 1, 2(a), 2(b), 3(a), 3(b)).

Each figure was designed by the authors to separate two neighbouring
rungs of the check ladder.  This script rebuilds all five and shows,
check by check, who sees the error first — the table printed at the end
is the narrative of Section 2 of the paper in executable form.

Run:  python examples/paper_figures.py
"""

from repro.core import (check_input_exact, check_local,
                        check_output_exact, check_symbolic_01x,
                        is_extendable)
from repro.generators import ALL_FIGURES

CHECKS = [
    ("0,1,X", check_symbolic_01x),
    ("local", check_local),
    ("output exact", check_output_exact),
    ("input exact", check_input_exact),
]

DESCRIPTIONS = {
    "figure1": "correct partial implementation, two Black Boxes",
    "figure2a": "definite wrong output value (0,1,X finds it)",
    "figure2b": "Z xor Z reconvergence (0,1,X blind, Z_i sees it)",
    "figure3a": "two outputs need contradictory boxes (output exact)",
    "figure3b": "box cannot see x8 (only input exact notices)",
}


def main():
    header = "%-9s  %-52s" % ("figure", "scenario")
    header += "".join("  %-12s" % name for name, _ in CHECKS)
    header += "  ground truth"
    print(header)
    print("-" * len(header))

    for name, (factory, expected_first) in ALL_FIGURES.items():
        spec, partial = factory()
        row = "%-9s  %-52s" % (name, DESCRIPTIONS[name])
        for check_name, check in CHECKS:
            result = check(spec, partial)
            row += "  %-12s" % ("ERROR" if result.error_found else "ok")
        truth = is_extendable(spec, partial, limit=1 << 18)
        row += "  %s" % ("extendable" if truth else "unextendable")
        print(row)

    print()
    print("Reading: each row's first ERROR column matches the check the")
    print("paper introduces with that figure; everything to the right")
    print("also finds it (the ladder is monotone), everything to the")
    print("left is blind to it.")


if __name__ == "__main__":
    main()
