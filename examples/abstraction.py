#!/usr/bin/env python3
"""Abstraction of BDD-hostile logic (the paper's second application).

Multipliers are the classic BDD killer: their canonical form grows
exponentially with operand width, so monolithic equivalence checking of
a datapath containing one is expensive.  The paper's recipe: put the
difficult block into a Black Box and run Black Box Equivalence Checking
instead.  The verdict becomes one-sided — "no error" no longer implies
full correctness — but every error found in the *rest* of the design is
real, and the cheap rungs of the ladder need no BDD at all.

This script builds a multiply-accumulate datapath with status flags,
breaks a flag gate, and refutes the design with plain random-pattern
0,1,X simulation — zero BDD nodes — where the monolithic check has to
construct the multiplier's canonical form twice.

Run:  python examples/abstraction.py
"""

from repro.bdd import Bdd
from repro.circuit import CircuitBuilder, GateType
from repro.core import check_equivalence, run_ladder
from repro.partial import carve
from repro.partial.mutations import Mutation, apply_mutation
from repro.sim import symbolic_simulate

WIDTH = 6  # operand width of the embedded multiplier


def build_mac():
    """out = (a * b) + c, plus carry and two c-operand status flags."""
    builder = CircuitBuilder("mac")
    a, b = builder.interleaved_inputs(("a", "b"), WIDTH)
    c = builder.inputs("c", 2 * WIDTH)

    products = [[builder.and_(a[i], b[j], out="pp_%d_%d" % (j, i))
                 for i in range(WIDTH)] for j in range(WIDTH)]
    row = list(products[0]) + [builder.const(False)]
    prod_bits = [row[0]]
    for j in range(1, WIDTH):
        nxt = []
        carry = builder.const(False)
        for i in range(WIDTH):
            s, carry = builder.full_adder(row[i + 1], products[j][i],
                                          carry)
            nxt.append(s)
        nxt.append(carry)
        prod_bits.append(nxt[0])
        row = nxt
    prod_bits.extend(row[1:])

    sums, cout = builder.ripple_adder(prod_bits, c)
    builder.outputs(sums, "o")
    builder.output(cout, "ocarry")
    builder.circuit.add_output(builder.nor_(*c, out="czero"))
    builder.circuit.add_output(builder.xor_tree(c, "cpar"))
    return builder.build(), prod_bits


def main():
    spec, spec_prod = build_mac()
    print("Specification: %s (contains a %dx%d multiplier)"
          % (spec, WIDTH, WIDTH))

    impl, impl_prod = build_mac()
    impl = apply_mutation(impl, Mutation("invert_output", "czero"))
    print("Implementation bug: inverted flag gate 'czero' "
          "(independent of the multiplier).\n")

    print("A. Monolithic BDD equivalence check (builds the multiplier "
          "twice):")
    bdd = Bdd()
    verdict = check_equivalence(spec, impl, bdd)
    print("   verdict: %s, peak %d BDD nodes, %.2fs"
          % ("inequivalent" if not verdict.equivalent else "equivalent",
             bdd.peak_live_nodes, verdict.seconds))

    print("\nB. Abstraction: carve the implementation's multiplier "
          "into a Black Box:")
    mult_nets = {net for net in impl.cone(impl_prod)
                 if impl.drives(net)}
    boxed = carve(impl, [mult_nets])
    print("   %s" % boxed)
    results = run_ladder(spec, boxed, patterns=2000, seed=0)
    result = results[-1]
    print("   %s check: %s (%.3fs, %s BDD nodes)"
          % (result.check,
             "ERROR — real, box-independent" if result.error_found
             else "no error",
             result.seconds,
             result.stats.get("peak_nodes", 0)))
    assert result.error_found
    assert result.check == "random_pattern"

    print("\nThe flag bug is refuted by ternary simulation alone: the "
          "multiplier is never")
    print("represented symbolically, and the check needed no BDD at "
          "all.  Errors hidden")
    print("behind the box would need the symbolic rungs (and a spec "
          "BDD), but any error")
    print("this check reports is guaranteed independent of the "
          "abstracted block.")


if __name__ == "__main__":
    main()
