#!/usr/bin/env python3
"""BDD engine vs SAT engine (the paper's future-work comparison).

"In the future we plan to compare our BDD based implementation of the
different checks to a version using SAT engines."  This library ships
both: the 0,1,X check as a single CNF query over a dual-rail expansion,
and the output exact check as a CEGAR loop between two CDCL solvers.
This script runs both backends on a mutation campaign and compares
verdicts and runtimes.

Run:  python examples/sat_backend.py
"""

import random
import time

from repro.core import check_output_exact, check_symbolic_01x
from repro.generators import alu4_like
from repro.partial import (PartialImplementation, insert_random_error,
                           make_partial)
from repro.sat import check_output_exact_sat, check_symbolic_01x_sat


def main():
    spec = alu4_like()
    partial = make_partial(spec, fraction=0.1, num_boxes=1, seed=5)
    rng = random.Random(1)
    cases = []
    for _ in range(10):
        mutated, _ = insert_random_error(partial.circuit, rng)
        cases.append(PartialImplementation(mutated, partial.boxes))

    print("%-4s %-22s %-22s" % ("", "0,1,X check", "output exact check"))
    print("%-4s %-10s %-11s %-10s %-11s"
          % ("case", "BDD", "SAT", "BDD", "SAT"))
    totals = {"bdd01x": 0.0, "sat01x": 0.0, "bddoe": 0.0, "satoe": 0.0}
    for index, case in enumerate(cases):
        t0 = time.perf_counter()
        b1 = check_symbolic_01x(spec, case)
        totals["bdd01x"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        s1 = check_symbolic_01x_sat(spec, case)
        totals["sat01x"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        b2 = check_output_exact(spec, case)
        totals["bddoe"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        s2 = check_output_exact_sat(spec, case)
        totals["satoe"] += time.perf_counter() - t0
        assert b1.error_found == s1.error_found
        assert b2.error_found == s2.error_found
        print("%-4d %-10s %-11s %-10s %-11s"
              % (index,
                 "ERR" if b1.error_found else "ok",
                 "ERR" if s1.error_found else "ok",
                 "ERR" if b2.error_found else "ok",
                 ("ERR" if s2.error_found else "ok")
                 + " (%dit)" % s2.stats["iterations"]))

    print("\ntotal seconds:")
    print("  0,1,X:        BDD %.2fs   SAT %.2fs"
          % (totals["bdd01x"], totals["sat01x"]))
    print("  output exact: BDD %.2fs   SAT/CEGAR %.2fs"
          % (totals["bddoe"], totals["satoe"]))
    print("\nBoth backends agree on every verdict (they are provably "
          "the same check).")


if __name__ == "__main__":
    main()
