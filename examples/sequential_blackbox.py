#!/usr/bin/env python3
"""Sequential circuits with Black Boxes (the paper's future work).

"Another interesting question is how the methods can be extended to
verify also sequential circuits containing Black Boxes."  This library
answers it for bounded depth: unroll k time frames into a combinational
circuit (Black Boxes duplicated per frame) and run the ladder on the
expansion.

The design under test is a serial accumulator whose adder slice is still
unimplemented; we check it over several clock cycles, then inject a
control bug and watch the bounded check refute the machine.

Run:  python examples/sequential_blackbox.py
"""

from repro.circuit import CircuitBuilder, Gate, GateType
from repro.partial import BlackBox
from repro.seq import (Latch, SequentialCircuit,
                       check_bounded_equivalence,
                       check_sequential_partial)

WIDTH = 4


def build_accumulator(name, with_adder=True):
    """acc <= clear ? 0 : acc + in; outputs the accumulator."""
    builder = CircuitBuilder(name)
    clear = builder.input("clear")
    data = builder.inputs("in", WIDTH)
    state = [builder.input("acc%d" % i) for i in range(WIDTH)]

    if with_adder:
        sums, _ = builder.ripple_adder(state, data)
    else:
        sums = ["sum%d" % i for i in range(WIDTH)]  # Black Box outputs
    nclear = builder.not_(clear)
    for i in range(WIDTH):
        builder.gate(GateType.AND, [sums[i], nclear],
                     out="next%d" % i)
    for i in range(WIDTH):
        builder.output(builder.buf(state[i]), "out%d" % i)
    core = builder.circuit
    core.validate(allow_free=not with_adder)
    latches = [Latch("acc%d" % i, "next%d" % i) for i in range(WIDTH)]
    return SequentialCircuit(core, latches, name=name)


def main():
    spec = build_accumulator("acc_spec", with_adder=True)
    print("Specification machine: %s" % spec)
    trace = spec.simulate([
        {"clear": False, **{"in%d" % i: bool(3 >> i & 1)
                            for i in range(WIDTH)}}] * 4)
    values = [sum(t["out%d" % i] << i for i in range(WIDTH))
              for t in trace]
    print("accumulating 3 per cycle: %s\n" % values)

    partial = build_accumulator("acc_impl", with_adder=False)
    boxes = [BlackBox("ADDER",
                      tuple(n for pair in zip(
                          ("acc%d" % i for i in range(WIDTH)),
                          ("in%d" % i for i in range(WIDTH)))
                          for n in pair),
                      tuple("sum%d" % i for i in range(WIDTH)))]
    print("Partial machine: adder slice is a Black Box (%d->%d)\n"
          % (len(boxes[0].inputs), len(boxes[0].outputs)))

    frames = 4
    results = check_sequential_partial(spec, partial, boxes,
                                       frames=frames, patterns=300,
                                       seed=0, stop_at_first_error=False)
    print("clean partial machine over %d cycles:" % frames)
    for result in results:
        print("  %-15s %s" % (result.check,
                              "ERROR" if result.error_found else "ok"))
    assert not any(r.error_found for r in results)

    # Bug: the clear gating is inverted on bit 0.
    broken_core = partial.core.copy()
    gate = broken_core.gate("next0")
    broken_core.replace_gate(Gate("next0", GateType.NOR, gate.inputs))
    broken = SequentialCircuit(broken_core, partial.latches,
                               name="acc_broken")
    results = check_sequential_partial(spec, broken, boxes,
                                       frames=frames, patterns=300,
                                       seed=0)
    print("\nwith an inverted clear gate:")
    for result in results:
        print("  %-15s %s" % (result.check,
                              "ERROR" if result.error_found else "ok"))
    assert results[-1].error_found
    print("\nThe bounded check refutes the machine: no adder "
          "implementation — not even one\nthat changed every cycle — "
          "makes the first %d cycles match the specification."
          % frames)


if __name__ == "__main__":
    main()
