#!/usr/bin/env python3
"""Quickstart: check a partial implementation against a specification.

Builds a small specification, carves part of it into a Black Box (as a
designer would while the block is still unfinished), deliberately breaks
a gate in the finished part, and runs the paper's ladder of checks.

Run:  python examples/quickstart.py
"""

import random

from repro.circuit import CircuitBuilder
from repro.core import run_ladder, synthesize_single_box
from repro.partial import make_partial, insert_random_error, \
    PartialImplementation


def build_specification():
    """A 4-bit adder with a zero flag — the golden reference."""
    builder = CircuitBuilder("spec_adder")
    a, b = builder.interleaved_inputs(("a", "b"), 4)
    cin = builder.input("cin")
    sums, cout = builder.ripple_adder(a, b, cin)
    builder.outputs(sums, "s")
    builder.output(cout, "cout")
    builder.circuit.add_output(builder.nor_(*sums, out="zero"))
    return builder.build()


def show(results):
    for result in results:
        verdict = "ERROR FOUND" if result.error_found else "no error"
        extra = ""
        if result.counterexample:
            extra = "  counterexample: %s" % {
                k: int(v) for k, v in sorted(
                    result.counterexample.items())}
        print("  %-15s %-12s (%.3fs)%s"
              % (result.check, verdict, result.seconds, extra))


def main():
    spec = build_specification()
    print("Specification: %s\n" % spec)

    # A partial implementation: ~15% of the gates are not finished yet
    # and live in one Black Box.
    partial = make_partial(spec, fraction=0.15, num_boxes=1, seed=1)
    print("Partial implementation: %s" % partial)
    box = partial.boxes[0]
    print("Black Box interface: %d inputs -> %d outputs\n"
          % (len(box.inputs), len(box.outputs)))

    print("1. Checking the clean partial implementation:")
    results = run_ladder(spec, partial, patterns=500, seed=0,
                         stop_at_first_error=False)
    show(results)
    assert not any(r.error_found for r in results)
    print("   -> consistent: the unfinished design can still be "
          "completed correctly.\n")

    print("2. Synthesizing a witness implementation for the box:")
    witness = synthesize_single_box(spec, partial)
    print("   synthesized box: %s" % witness)
    complete = partial.substitute({box.name: witness})
    from repro.core import check_equivalence

    assert check_equivalence(spec, complete).equivalent
    print("   -> plugged in and formally verified against the spec.\n")

    print("3. Injecting a design error into the finished part:")
    mutated, mutation = insert_random_error(partial.circuit,
                                            random.Random(4))
    print("   inserted: %s" % mutation.describe())
    buggy = PartialImplementation(mutated, partial.boxes)
    results = run_ladder(spec, buggy, patterns=500, seed=0)
    show(results)
    if results[-1].error_found:
        print("   -> the error is already refutable: NO implementation "
              "of the Black Box can make this design correct.")
    else:
        print("   -> this particular mutation is absorbable by the box.")


if __name__ == "__main__":
    main()
