#!/usr/bin/env python3
"""Verification during design: boxes shrink as the implementation grows.

The paper's headline use-case (Section 1): "Design errors can be
detected when only a partial implementation is at hand."  This script
plays through a design session: a comparator is implemented block by
block; after every step the current partial design is checked against
the specification.  In one of the steps the designer makes a mistake —
Black Box Equivalence Checking catches it immediately, cycles before a
conventional flow could have run its first full equivalence check.

Run:  python examples/incremental_design.py
"""

from repro.core import check_partial_equivalence
from repro.generators.comparator import magnitude_comparator
from repro.partial import carve, Mutation, apply_mutation


def design_stages(spec):
    """Simulate progressive top-down completion.

    The team designs from the outputs towards the inputs; stage k still
    has the first (4 - k) quarters of the topological order unfinished,
    collected in one Black Box on the input side.
    """
    order = spec.topological_order()
    quarters = 4
    step = (len(order) + quarters - 1) // quarters
    for done in range(1, quarters):
        remaining = order[:len(order) - done * step]
        if remaining:
            yield done, set(remaining)
    yield quarters, None   # fully complete


def main():
    spec = magnitude_comparator(8)
    print("Specification: %s\n" % spec)

    for stage, unfinished in design_stages(spec):
        if unfinished is None:
            print("stage %d: design complete." % stage)
            break
        partial = carve(spec, [unfinished])
        # The designer breaks a finished gate at stage 3.
        if stage == 3:
            finished_order = [net for net in spec.topological_order()
                              if partial.circuit.drives(net)]
            victim = next(net for net in reversed(finished_order)
                          if partial.circuit.gate(net).gtype.name
                          in ("AND", "OR"))
            broken = apply_mutation(partial.circuit,
                                    Mutation("change_gate_type", victim))
            from repro.partial import PartialImplementation

            partial = PartialImplementation(broken, partial.boxes)
            note = " (a bug slipped in at gate %r!)" % victim
        else:
            note = ""
        verdict = check_partial_equivalence(spec, partial,
                                            patterns=300, seed=stage)
        done_gates = partial.circuit.num_gates
        print("stage %d: %3d gates done, %3d boxed%s" % (
            stage, done_gates, len(unfinished), note))
        print("          verdict: %s"
              % ("ERROR — no completion of the unfinished part can be "
                 "correct" if verdict.error_found else
                 "consistent with the spec so far"))
        if verdict.error_found:
            print("          -> fix it now, before designing the rest "
                  "on top of a broken base.")
            break


if __name__ == "__main__":
    main()
