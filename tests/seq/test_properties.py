"""Property test: time-frame expansion equals cycle-accurate simulation."""

import random

from hypothesis import given, settings, strategies as st

from repro.circuit import CircuitBuilder, GateType
from repro.seq import Latch, SequentialCircuit, frame_net, unroll


def random_machine(seed):
    rng = random.Random(seed)
    builder = CircuitBuilder("m%d" % seed)
    n_in = rng.randint(1, 3)
    n_state = rng.randint(1, 3)
    inputs = [builder.input("x%d" % i) for i in range(n_in)]
    states = [builder.input("q%d" % i) for i in range(n_state)]
    pool = inputs + states
    for _ in range(rng.randint(2, 10)):
        gtype = rng.choice([GateType.AND, GateType.OR, GateType.XOR,
                            GateType.NAND, GateType.NOR, GateType.NOT])
        fanin = 1 if gtype is GateType.NOT else 2
        pool.append(builder.gate(gtype, [rng.choice(pool)
                                         for _ in range(fanin)]))
    latches = []
    for i in range(n_state):
        src = rng.choice(pool)
        builder.buf(src, out="next%d" % i)
        latches.append(Latch("q%d" % i, "next%d" % i,
                             init=rng.random() < 0.5))
    n_out = rng.randint(1, 2)
    for k in range(n_out):
        builder.output(builder.buf(rng.choice(pool)), "y%d" % k)
    core = builder.circuit
    core.validate()
    return SequentialCircuit(core, latches)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=5),
       st.integers(min_value=0, max_value=1000))
def test_unroll_equals_simulation(seed, frames, stimulus_seed):
    machine = random_machine(seed)
    rng = random.Random(stimulus_seed)
    sequence = [{name: bool(rng.getrandbits(1))
                 for name in machine.inputs} for _ in range(frames)]
    reference = machine.simulate(sequence)

    flat = unroll(machine, frames)
    assignment = {}
    for t, step in enumerate(sequence):
        for name, value in step.items():
            assignment[frame_net(name, t)] = value
    out = flat.evaluate(assignment)
    per_frame = len(machine.outputs)
    for t in range(frames):
        for k, net in enumerate(machine.outputs):
            flat_net = flat.outputs[t * per_frame + k]
            assert out[flat_net] == reference[t][net], (t, net)
