"""Tests for symbolic reachability and unbounded sequential equivalence."""

import pytest

from repro.bdd import Bdd
from repro.circuit import CircuitBuilder, CircuitError, GateType
from repro.seq import (Latch, SequentialCircuit,
                       check_bounded_equivalence,
                       check_unbounded_equivalence, encode_machine,
                       reachable_states)

from .test_sequential import count_of, make_counter


class TestReachability:
    def test_counter_reaches_all_states(self):
        bdd = Bdd()
        enc = encode_machine(make_counter(3), bdd, "A")
        reached, rings = reachable_states([enc], bdd)
        # an enabled counter walks through all 8 states, one per ring
        assert len(rings) == 8
        assert reached.sat_count() >> (bdd.num_vars - 3) == 8

    def test_disabled_transition_stays(self):
        """With en tied low the counter cannot leave the reset state —
        reachability is exact, not structural."""
        builder = CircuitBuilder("frozen")
        state = builder.input("q")
        builder.buf(state, out="nq")            # hold forever
        builder.output(builder.buf(state), "out")
        core = builder.circuit
        core.validate()
        machine = SequentialCircuit(core, [Latch("q", "nq")])
        bdd = Bdd()
        enc = encode_machine(machine, bdd, "A")
        reached, rings = reachable_states([enc], bdd)
        assert len(rings) == 1
        assert reached.sat_count() >> (bdd.num_vars - 1) == 1

    def test_partial_machine_rejected(self):
        seq = make_counter(2)
        core = seq.core.copy()
        core.remove_gate("nx0")
        partial = SequentialCircuit(core, seq.latches)
        with pytest.raises(CircuitError):
            encode_machine(partial, Bdd(), "A")


class TestUnboundedEquivalence:
    def test_identical_counters(self):
        result = check_unbounded_equivalence(make_counter(3),
                                             make_counter(3, "o"))
        assert result.equivalent
        assert result.reachable_count == 8
        assert result.trace is None

    def test_different_latch_count_same_behaviour(self):
        base = make_counter(2)
        padded_core = make_counter(2, "p").core.copy()
        padded_core.add_input("qdead")
        padded_core.add_gate("nxdead", GateType.NOT, ["qdead"])
        padded = SequentialCircuit(
            padded_core,
            list(make_counter(2, "p").latches)
            + [Latch("qdead", "nxdead")])
        assert check_unbounded_equivalence(base, padded).equivalent

    def test_broken_counter_trace_replays(self):
        spec = make_counter(3)
        bad = make_counter(3, "bad", broken_bit=1)
        result = check_unbounded_equivalence(spec, bad)
        assert not result.equivalent
        trace = result.trace
        assert trace is not None
        assert spec.simulate(trace) != bad.simulate(trace)

    def test_trace_is_shortest(self):
        """Onion-ring extraction yields a minimum-length witness: the
        bounded check at len(trace)-1 frames must still pass."""
        spec = make_counter(3)
        bad = make_counter(3, "bad", broken_bit=1)
        result = check_unbounded_equivalence(spec, bad)
        frames = len(result.trace)
        assert not check_bounded_equivalence(spec, bad,
                                             frames=frames).equivalent
        assert check_bounded_equivalence(spec, bad,
                                         frames=frames - 1).equivalent

    def test_agrees_with_bounded_past_diameter(self):
        """Once the bound exceeds the state-space diameter, bounded and
        unbounded verdicts coincide."""
        spec = make_counter(2)
        for broken in (None, 0, 1):
            impl = make_counter(2, "i", broken_bit=broken)
            unbounded = check_unbounded_equivalence(spec, impl)
            bounded = check_bounded_equivalence(spec, impl, frames=6)
            assert unbounded.equivalent == bounded.equivalent, broken

    def test_interface_checks(self):
        with pytest.raises(CircuitError):
            check_unbounded_equivalence(make_counter(2),
                                        make_counter(3))
