"""Tests for the sequential circuit model and simulation."""

import pytest

from repro.circuit import CircuitBuilder, CircuitError, Gate, GateType
from repro.seq import Latch, SequentialCircuit


def make_counter(width, name="cnt", broken_bit=None):
    """width-bit enabled counter; outputs show the current count."""
    builder = CircuitBuilder(name)
    enable = builder.input("en")
    states = [builder.input("q%d" % i) for i in range(width)]
    carry = enable
    for i in range(width):
        gtype = GateType.OR if broken_bit == i else GateType.XOR
        builder.gate(gtype, [states[i], carry], out="nx%d" % i)
        carry = builder.and_(states[i], carry)
    for i in range(width):
        builder.output(builder.buf(states[i]), "out%d" % i)
    core = builder.circuit
    core.validate()
    latches = [Latch("q%d" % i, "nx%d" % i) for i in range(width)]
    return SequentialCircuit(core, latches, name=name)


def count_of(step, width):
    return sum(step["out%d" % i] << i for i in range(width))


class TestModel:
    def test_interface_partition(self):
        seq = make_counter(3)
        assert seq.inputs == ["en"]
        assert seq.state_names == ["q0", "q1", "q2"]
        assert len(seq.outputs) == 3

    def test_initial_state(self):
        seq = make_counter(2)
        assert seq.initial_state() == {"q0": False, "q1": False}
        custom = SequentialCircuit(
            seq.core, [Latch("q0", "nx0", init=True),
                       Latch("q1", "nx1")])
        assert custom.initial_state() == {"q0": True, "q1": False}

    def test_latch_must_be_core_input(self):
        seq = make_counter(2)
        with pytest.raises(CircuitError):
            SequentialCircuit(seq.core, [Latch("ghost", "nx0")])

    def test_undriven_latch_source_fails_at_use(self):
        # An undriven next-state net is allowed at construction (it may
        # be a Black Box output) but rejected when completeness matters.
        seq = make_counter(2)
        dangling = SequentialCircuit(
            seq.core, [Latch("q0", "ghost"), Latch("q1", "nx1")])
        with pytest.raises(CircuitError):
            dangling.simulate([{"en": True}])
        from repro.seq import unroll
        with pytest.raises(CircuitError):
            unroll(dangling, 2)

    def test_duplicate_latch_rejected(self):
        seq = make_counter(2)
        with pytest.raises(CircuitError):
            SequentialCircuit(seq.core, [Latch("q0", "nx0"),
                                         Latch("q0", "nx1")])
        with pytest.raises(CircuitError):
            SequentialCircuit(seq.core, [Latch("q0", "nx0"),
                                         Latch("q1", "nx0")])

    def test_repr(self):
        assert "latches" in repr(make_counter(2))


class TestSimulation:
    def test_counting(self):
        seq = make_counter(3)
        trace = seq.simulate([{"en": True}] * 6)
        assert [count_of(s, 3) for s in trace] == [0, 1, 2, 3, 4, 5]

    def test_enable_freezes(self):
        seq = make_counter(3)
        trace = seq.simulate([{"en": True}, {"en": False},
                              {"en": False}, {"en": True},
                              {"en": True}])
        assert [count_of(s, 3) for s in trace] == [0, 1, 1, 1, 2]

    def test_wraparound(self):
        seq = make_counter(2)
        trace = seq.simulate([{"en": True}] * 6)
        assert [count_of(s, 2) for s in trace] == [0, 1, 2, 3, 0, 1]

    def test_custom_start_state(self):
        seq = make_counter(2)
        trace = seq.simulate([{"en": True}],
                             state={"q0": True, "q1": True})
        assert count_of(trace[0], 2) == 3

    def test_partial_core_cannot_simulate(self):
        seq = make_counter(2)
        core = seq.core.copy()
        core.remove_gate("nx0")
        partial = SequentialCircuit(core, seq.latches)
        with pytest.raises(CircuitError):
            partial.simulate([{"en": True}])
