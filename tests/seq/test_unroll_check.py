"""Tests for time-frame expansion and bounded sequential checking."""

import pytest

from repro.circuit import CircuitBuilder, CircuitError, Gate, GateType
from repro.partial import BlackBox
from repro.seq import (Latch, SequentialCircuit, check_bounded_equivalence,
                       check_sequential_partial, frame_net, unroll,
                       unroll_partial)

from .test_sequential import count_of, make_counter


class TestUnroll:
    def test_unrolled_matches_simulation(self):
        seq = make_counter(3)
        frames = 5
        flat = unroll(seq, frames)
        sequence = [{"en": True}, {"en": False}, {"en": True},
                    {"en": True}, {"en": True}]
        reference = seq.simulate(sequence)
        assignment = {}
        for t, step in enumerate(sequence):
            assignment[frame_net("en", t)] = step["en"]
        out = flat.evaluate(assignment)
        flat_outputs = flat.outputs
        for t in range(frames):
            for k, net in enumerate(seq.outputs):
                flat_net = flat_outputs[t * len(seq.outputs) + k]
                assert out[flat_net] == reference[t][net], (t, net)

    def test_initial_state_constants(self):
        core = make_counter(2).core
        seq = SequentialCircuit(core, [Latch("q0", "nx0", init=True),
                                       Latch("q1", "nx1")])
        flat = unroll(seq, 1)
        out = flat.evaluate({frame_net("en", 0): False})
        assert out[flat.outputs[0]] is True     # out0@0 = q0 init
        assert out[flat.outputs[1]] is False

    def test_zero_frames_rejected(self):
        with pytest.raises(CircuitError):
            unroll(make_counter(2), 0)

    def test_held_latch_output_unrolls(self):
        """An output that keeps its reset value resolves to the same
        source net in every frame; outputs must stay distinct."""
        builder = CircuitBuilder("hold")
        builder.input("x")
        builder.input("q")
        builder.buf("q", out="nq")
        builder.circuit.add_output("q")
        core = builder.circuit
        core.validate()
        seq = SequentialCircuit(core, [Latch("q", "nq", init=True)])
        flat = unroll(seq, 3)
        assert len(flat.outputs) == 3
        out = flat.evaluate({"x@%d" % t: False for t in range(3)})
        assert all(out[net] for net in flat.outputs)

    def test_partial_core_needs_unroll_partial(self):
        seq = make_counter(2)
        core = seq.core.copy()
        core.remove_gate("nx0")
        partial_seq = SequentialCircuit(core, seq.latches)
        with pytest.raises(CircuitError):
            unroll(partial_seq, 2)

    def test_unroll_partial_duplicates_boxes(self):
        seq = make_counter(2)
        core = seq.core.copy()
        core.remove_gate("nx0")
        partial_seq = SequentialCircuit(core, seq.latches)
        boxes = [BlackBox("INC", ("q0", "en"), ("nx0",))]
        partial = unroll_partial(partial_seq, 3, boxes)
        assert partial.num_boxes == 3
        names = [box.name for box in partial.boxes]
        assert names == ["INC@0", "INC@1", "INC@2"]
        # frame 1's box reads frame 0's outputs through the latch wiring
        assert partial.boxes[1].inputs[0] == "nx0@0"


class TestBoundedEquivalence:
    def test_identical_counters(self):
        assert check_bounded_equivalence(
            make_counter(3), make_counter(3, "other"), frames=6
        ).equivalent

    def test_broken_counter_detected_with_cycle_accurate_cex(self):
        spec = make_counter(3)
        bad = make_counter(3, "bad", broken_bit=1)
        result = check_bounded_equivalence(spec, bad, frames=6)
        assert not result.equivalent
        # replay the counterexample cycle by cycle
        frames = 6
        sequence = [
            {"en": result.counterexample[frame_net("en", t)]}
            for t in range(frames)]
        spec_trace = spec.simulate(sequence)
        bad_trace = bad.simulate(sequence)
        assert spec_trace != bad_trace

    def test_short_bound_may_miss(self):
        """The bit-1 XOR->OR bug first diverges on the 011 -> 100
        transition, i.e. at the 5th observed cycle; shorter bounds
        cannot distinguish the machines."""
        spec = make_counter(3)
        bad = make_counter(3, "bad", broken_bit=1)
        assert check_bounded_equivalence(spec, bad, frames=4).equivalent
        assert not check_bounded_equivalence(spec, bad,
                                             frames=5).equivalent

    def test_interface_mismatch_rejected(self):
        spec = make_counter(2)
        other = make_counter(3)
        with pytest.raises(CircuitError):
            check_bounded_equivalence(spec, other, frames=2)


class TestSequentialPartial:
    def _boxed_counter(self):
        seq = make_counter(3, "boxed")
        core = seq.core.copy()
        core.remove_gate("nx1")
        partial_seq = SequentialCircuit(core, seq.latches, name="boxed")
        boxes = [BlackBox("INC1", ("q1", "q0", "en"), ("nx1",))]
        return partial_seq, boxes

    def test_clean_boxed_counter_passes(self):
        spec = make_counter(3)
        partial_seq, boxes = self._boxed_counter()
        results = check_sequential_partial(spec, partial_seq, boxes,
                                           frames=5, patterns=200,
                                           seed=0,
                                           stop_at_first_error=False)
        assert not any(r.error_found for r in results)

    def test_error_outside_box_found(self):
        spec = make_counter(3)
        partial_seq, boxes = self._boxed_counter()
        core = partial_seq.core.copy()
        gate = core.gate("out0")
        core.replace_gate(Gate("out0", GateType.NOT, gate.inputs))
        broken = SequentialCircuit(core, partial_seq.latches)
        results = check_sequential_partial(spec, broken, boxes,
                                           frames=4, patterns=200,
                                           seed=0)
        assert results[-1].error_found

    def test_boxed_latch_input_error_needs_depth(self):
        """An error feeding only the boxed latch next-state is
        absorbable per frame; errors on visible outputs are not."""
        spec = make_counter(3)
        partial_seq, boxes = self._boxed_counter()
        # even the exact checks accept the clean design at depth 1
        results = check_sequential_partial(spec, partial_seq, boxes,
                                           frames=1, patterns=50,
                                           seed=1,
                                           stop_at_first_error=False)
        assert not any(r.error_found for r in results)
