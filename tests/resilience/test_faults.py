"""Fault-injection tests: every recovery path actually recovers.

The injectors (:mod:`repro.resilience.faults`) make the failures the
robustness layer claims to survive happen deterministically: allocator
death inside ``mk``, a reorder aborted mid-pass, ENOSPC / torn journal
appends, and workers that die mid-case.
"""

import json

import pytest

from repro.bdd import Bdd
from repro.core.result import OUTCOME_ERROR, OUTCOME_OK
from repro.experiments.runner import ExperimentConfig
from repro.jobs import (JournalWriteError, JournalWriter,
                        enumerate_cases, read_journal, run_campaign)
from repro.jobs.spec import CaseSpec
from repro.resilience import (FaultPlan, InjectedFault, crashy_stub_task,
                              inject_journal_fault,
                              inject_mk_memory_error,
                              inject_reorder_abort, planned_crash)

CONFIG = ExperimentConfig(selections=1, errors=4, patterns=30,
                          benchmarks=["alu4"])


def _some_case(**overrides) -> CaseSpec:
    case = enumerate_cases(CONFIG)[0]
    if overrides:
        from dataclasses import replace

        case = replace(case, **overrides)
    return case


class TestFaultPlan:
    def test_deterministic_across_instances(self):
        case = _some_case()
        a, b = FaultPlan.for_case(case), FaultPlan.for_case(case)
        assert a == b
        assert a.trigger("mk", 1, 100) == b.trigger("mk", 1, 100)
        assert a.fires("crash", 3) == b.fires("crash", 3)

    def test_differs_per_case(self):
        plans = [FaultPlan.for_case(c) for c in enumerate_cases(CONFIG)]
        assert len({p.seed for p in plans}) == len(plans)

    def test_trigger_range(self):
        plan = FaultPlan.for_case(_some_case())
        for site in ("a", "b", "c", "d"):
            assert 5 <= plan.trigger(site, 5, 50) < 50
        with pytest.raises(ValueError):
            plan.trigger("x", 3, 3)


class TestMkMemoryError:
    def test_manager_consistent_after_allocator_death(self):
        bdd = Bdd()
        xs = bdd.add_vars("abcdef")
        plan = FaultPlan.for_case(_some_case())
        at_call = plan.trigger("mk-oom", 2, 20)
        with inject_mk_memory_error(bdd.manager, at_call) as calls:
            with pytest.raises(MemoryError):
                acc = bdd.true
                for i, x in enumerate(xs):
                    acc = acc & (x | xs[(i + 2) % len(xs)])
        assert calls[0] == at_call
        assert bdd.manager.invariant_violations() == []
        # The seam is restored and the manager fully usable.
        conj = bdd.true
        for x in xs:
            conj = conj & x
        assert conj.sat_count(nvars=6) == 1

    def test_worker_degrades_mk_oom_to_error_record(self, monkeypatch):
        # An organic MemoryError inside a check must yield an ERROR
        # column, not lose the case or kill the campaign.
        from repro.experiments import runner
        from repro.jobs import worker as worker_module

        real = runner.run_one_case

        def oom_on_ie(spec, partial, checks, *args, **kwargs):
            if "ie" in checks:
                raise MemoryError("injected: allocator death")
            return real(spec, partial, checks, *args, **kwargs)

        monkeypatch.setattr(worker_module, "run_one_case", oom_on_ie,
                            raising=False)
        monkeypatch.setattr(runner, "run_one_case", oom_on_ie)
        record = worker_module.execute_case(_some_case())
        assert record.outcome == OUTCOME_ERROR
        assert record.checks["ie"].outcome == OUTCOME_ERROR
        assert "MemoryError" in record.checks["ie"].detail
        assert record.checks["r.p."].outcome == OUTCOME_OK


class TestReorderAbort:
    def _loaded_bdd(self):
        bdd = Bdd()
        xs = bdd.add_vars(["v%d" % i for i in range(8)])
        acc = bdd.false
        for i in range(0, 8, 2):
            acc = acc | (xs[i] & xs[i + 1])
        return bdd, acc

    def test_abort_leaves_invariants_intact(self):
        bdd, acc = self._loaded_bdd()
        count = acc.sat_count(nvars=8)
        with inject_reorder_abort(at_swap=3) as swaps:
            with pytest.raises(InjectedFault):
                bdd.reorder()
        assert swaps[0] == 3
        assert bdd.manager.invariant_violations() == []
        assert acc.sat_count(nvars=8) == count

    def test_reorder_works_after_abort(self):
        bdd, acc = self._loaded_bdd()
        with inject_reorder_abort(at_swap=5):
            with pytest.raises(InjectedFault):
                bdd.reorder()
        bdd.reorder()  # seam restored; a clean pass must succeed
        assert bdd.manager.invariant_violations() == []


class TestJournalFaults:
    def _record(self):
        from repro.jobs.journal import CaseRecord, CheckOutcome

        return CaseRecord(case=_some_case(), outcome=OUTCOME_OK,
                          checks={"ie": CheckOutcome(error_found=True)},
                          seconds=0.5, mutation="stub")

    def test_transient_enospc_retried_once(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with JournalWriter(path) as writer:
            with inject_journal_fault(writer, at_write=1,
                                      mode="enospc") as proxy:
                writer.write(self._record())
            assert proxy.fired == 1
        records = read_journal(path)
        assert len(records) == 1
        assert records[0].checks["ie"].error_found

    def test_torn_write_truncated_then_retried(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with JournalWriter(path) as writer:
            with inject_journal_fault(writer, at_write=1,
                                      mode="torn") as proxy:
                writer.write(self._record())
            assert proxy.fired == 1
        with open(path, "rb") as handle:
            raw = handle.read()
        # Exactly one whole line: the torn half was truncated away.
        assert raw.count(b"\n") == 1
        json.loads(raw.decode("utf-8"))
        assert len(read_journal(path)) == 1

    def test_persistent_enospc_diagnosed_with_path(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with JournalWriter(path) as writer:
            writer.write(self._record())
            with inject_journal_fault(writer, at_write=1, mode="enospc",
                                      repeat=True):
                with pytest.raises(JournalWriteError) as info:
                    writer.write(self._record())
        assert path in str(info.value)
        assert "resume" in str(info.value)
        # The earlier record survived and the file is whole-line clean.
        assert len(read_journal(path)) == 1

    def test_torn_then_full_disk_leaves_clean_file(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with JournalWriter(path) as writer:
            writer.write(self._record())
            with inject_journal_fault(writer, at_write=1, mode="torn",
                                      repeat=True):
                with pytest.raises(JournalWriteError):
                    writer.write(self._record())
        records = read_journal(path)
        assert len(records) == 1


class TestWorkerCrashRecovery:
    def test_planned_crashes_end_as_terminal_errors(self):
        # Deterministically crash a subset of workers; the pool must
        # retry, re-crash (the plan is coordinate-pure) and emit
        # terminal ERROR records while unaffected cases stay OK.
        cases = enumerate_cases(CONFIG)
        crashing = {c.key for c in cases if planned_crash(c)}
        assert crashing, "fault plan selected no case; widen the config"
        assert len(crashing) < len(cases)
        result = run_campaign(CONFIG, jobs=2, timeout=60.0,
                              task=crashy_stub_task)
        by_key = {r.case.key: r for r in result.records}
        for case in cases:
            record = by_key[case.key]
            if case.key in crashing:
                assert record.outcome == OUTCOME_ERROR
                assert "worker died" in record.checks["ie"].detail
            else:
                assert record.outcome == OUTCOME_OK
