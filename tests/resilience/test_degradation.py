"""Campaign-level graceful degradation under resource budgets.

Covers the acceptance criterion of the robustness PR: a campaign case
whose most accurate (level-5, ``ie``) check exceeds the node budget
produces an ``inconclusive`` record that carries the strongest
completed level's verdict and per-level stats — not a bare TIMEOUT —
and the serial and parallel paths aggregate such records identically.
"""

from dataclasses import replace

import pytest

from repro.core.result import (OUTCOME_INCONCLUSIVE, OUTCOME_OK,
                               OUTCOME_TIMEOUT)
from repro.experiments.export import rows_to_csv, rows_to_dict
from repro.experiments.runner import CHECKS, ExperimentConfig
from repro.experiments.tables import format_table
from repro.jobs import enumerate_cases, execute_case, run_campaign

CONFIG = ExperimentConfig(selections=1, errors=3, patterns=30,
                          benchmarks=["alu4"])


def _ie_killing_case():
    """An alu4 case plus a node limit that kills only the ie check.

    The threshold is computed from an ungoverned run (peaks are
    deterministic), so the test does not hard-code BDD sizes.
    """
    for case in enumerate_cases(CONFIG):
        base = execute_case(case)
        ie_peak = base.checks["ie"].peak_nodes
        lower_peak = max(o.peak_nodes for c, o in base.checks.items()
                        if c != "ie")
        if lower_peak < ie_peak - 1:
            limit = (lower_peak + ie_peak) // 2
            return replace(case, node_limit=limit), base
    pytest.skip("no case separates ie peak from the lower rungs")


class TestAcceptance:
    def test_level5_node_kill_yields_inconclusive_with_stats(self):
        case, base = _ie_killing_case()
        record = execute_case(case)
        assert record.outcome == OUTCOME_INCONCLUSIVE
        assert record.outcome != OUTCOME_TIMEOUT
        ie = record.checks["ie"]
        assert ie.outcome == OUTCOME_INCONCLUSIVE
        # Strongest completed level (oe) verdict is carried verbatim.
        assert ie.error_found == base.checks["oe"].error_found
        assert "strongest completed level: oe" in ie.detail
        assert "live_nodes" in ie.detail
        # Per-level stats: every lower rung completed with its own
        # timing/node column, unchanged by governance.
        for check in ("r.p.", "0,1,X", "loc.", "oe"):
            assert record.checks[check].outcome == OUTCOME_OK
            assert record.checks[check].peak_nodes \
                == base.checks[check].peak_nodes
        assert ie.peak_nodes > 0  # the node count at the kill


class TestSerialParallelWithInconclusive:
    def test_aggregates_identically(self):
        config = replace(CONFIG)
        config.node_limit = _ie_killing_case()[0].node_limit
        serial = run_campaign(config)
        parallel = run_campaign(config, jobs=2)
        assert serial.executed == parallel.executed == 3

        def det(row):
            return (row.circuit, row.cases, row.detected, row.valid,
                    row.timeouts, row.check_errors, row.inconclusive,
                    row.strongest_detected, row.strongest_valid,
                    row.impl_nodes, row.peak_nodes)

        assert det(serial.rows["alu4"]) == det(parallel.rows["alu4"])
        for ours, theirs in zip(serial.records, parallel.records):
            assert ours.case == theirs.case
            assert ours.outcome == theirs.outcome
            for check in CHECKS:
                assert ours.checks[check].outcome \
                    == theirs.checks[check].outcome
                assert ours.checks[check].error_found \
                    == theirs.checks[check].error_found

    def test_journal_roundtrip_preserves_inconclusive(self, tmp_path):
        config = replace(CONFIG)
        config.node_limit = _ie_killing_case()[0].node_limit
        path = str(tmp_path / "campaign.jsonl")
        run_campaign(config, journal=path)
        resumed = run_campaign(config, resume=path)
        assert resumed.executed == 0
        assert resumed.resumed == 3
        row = resumed.rows["alu4"]
        assert sum(row.inconclusive.values()) > 0


class TestDisplay:
    def _degraded_row(self):
        config = replace(CONFIG)
        config.node_limit = _ie_killing_case()[0].node_limit
        return run_campaign(config).rows["alu4"]

    def test_table_shows_inc_column_and_best_effort(self):
        row = self._degraded_row()
        text = format_table([row], "governed")
        assert "inc" in text
        assert "inconclusive" in text
        assert "best-effort (strongest completed level)" in text

    def test_export_carries_inconclusive_and_best_effort(self):
        row = self._degraded_row()
        entry = rows_to_dict([row])[0]
        assert entry["checks"]["ie"]["inconclusive"] > 0
        assert entry["checks"]["ie"]["valid_cases"] \
            < entry["checks"]["oe"]["valid_cases"] \
            + entry["checks"]["ie"]["inconclusive"]
        assert entry["best_effort"]["strongest_valid"] > 0
        csv_text = rows_to_csv([row])
        header = csv_text.splitlines()[0]
        assert header.endswith("inconclusive,valid_cases,timeouts,errors")


class TestSoftTimeout:
    def test_soft_deadline_marks_remaining_checks(self):
        # A deadline so tight nothing symbolic can finish: the worker
        # must stop cooperatively and mark the unreached checks
        # inconclusive instead of running them.
        case = replace(enumerate_cases(CONFIG)[0], soft_timeout=1e-6)
        record = execute_case(case)
        assert record.outcome == OUTCOME_INCONCLUSIVE
        slices = list(record.checks.values())
        assert any(o.outcome == OUTCOME_INCONCLUSIVE for o in slices)
        assert all(o.outcome in (OUTCOME_OK, OUTCOME_INCONCLUSIVE)
                   for o in slices)
        killed = [o for o in slices
                  if o.outcome == OUTCOME_INCONCLUSIVE]
        assert any("wall_clock" in o.detail
                   or "soft deadline" in o.detail for o in killed)
