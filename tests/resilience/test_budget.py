"""Budget governance: trip behaviour, ladder degradation, no-change.

Three claims are proved here:

1. the ``Budget`` primitive trips the right resource at the right place
   and leaves the BDD manager consistent and usable;
2. a budget kill at *each* ladder level yields an ``inconclusive``
   result carrying the strongest completed level's verdict;
3. (hypothesis property) attaching a budget whose limits are never hit
   changes no check verdict and no BDD result — governance is free.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import Bdd, default_bdd
from repro.core import ladder as ladder_module
from repro.core import run_ladder
from repro.core.result import (OUTCOME_INCONCLUSIVE, OUTCOME_OK,
                               CheckResult)
from repro.generators import figure1, figure3b
from repro.resilience import Budget, BudgetExceededError


class TestBudgetPrimitive:
    def test_from_limits_all_unset_is_none(self):
        assert Budget.from_limits() is None
        assert Budget.from_limits(node_limit=5).max_live_nodes == 5
        assert Budget.from_limits(soft_timeout=1.5).wall_seconds == 1.5

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            Budget(wall_seconds=0)
        with pytest.raises(ValueError):
            Budget(max_live_nodes=-1)
        with pytest.raises(ValueError):
            Budget(max_steps=0)

    def test_node_limit_trips_in_mk_and_manager_survives(self):
        bdd = Bdd()
        xs = bdd.add_vars("abcdefgh")
        budget = Budget(max_live_nodes=30)
        bdd.set_budget(budget)
        with pytest.raises(BudgetExceededError) as info:
            acc = bdd.false
            for i, x in enumerate(xs):
                acc = acc | (x & xs[(i + 3) % len(xs)])
        assert info.value.resource == "live_nodes"
        assert info.value.where == "mk"
        assert info.value.value > info.value.limit == 30
        # The manager is consistent and usable after the trip.
        assert bdd.manager.invariant_violations() == []
        bdd.set_budget(None)
        assert ((xs[0] & xs[1]) | ~xs[0]).sat_one() is not None

    def test_steps_limit_trips(self):
        bdd = Bdd()
        xs = bdd.add_vars("abcdef")
        bdd.set_budget(Budget(max_steps=10, check_interval=1))
        with pytest.raises(BudgetExceededError) as info:
            acc = bdd.true
            for i, x in enumerate(xs):
                acc = acc & (x ^ xs[(i + 1) % len(xs)])
        assert info.value.resource == "steps"
        assert info.value.steps > 10

    def test_wall_clock_trips_at_checkpoint(self):
        budget = Budget(wall_seconds=1e-9).start()
        import time

        time.sleep(0.01)
        with pytest.raises(BudgetExceededError) as info:
            budget.checkpoint("test")
        assert info.value.resource == "wall_clock"

    def test_unlimited_budget_is_inert_but_counts(self):
        bdd = Bdd()
        xs = bdd.add_vars("abcd")
        budget = Budget()
        bdd.set_budget(budget)
        acc = bdd.true
        for x in xs:
            acc = acc & x
        assert budget.steps > 0
        assert not budget.limited


def _raise_budget(resource="live_nodes", where="mk"):
    def raiser(*args, **kwargs):
        raise BudgetExceededError(resource, where, 999, 100, steps=7,
                                  elapsed=0.25)
    return raiser


class TestLadderDegradation:
    """A budget kill at each rung degrades to the right inconclusive."""

    @pytest.mark.parametrize("kill,expect_completed", [
        ("random_pattern", []),
        ("symbolic_01x", ["random_pattern"]),
        ("local", ["random_pattern", "symbolic_01x"]),
        ("output_exact", ["random_pattern", "symbolic_01x", "local"]),
        ("input_exact", ["random_pattern", "symbolic_01x", "local",
                         "output_exact"]),
    ])
    def test_kill_at_each_level(self, monkeypatch, kill,
                                expect_completed):
        spec, partial = figure1()  # no error: every rung completes
        if kill == "random_pattern":
            monkeypatch.setattr(ladder_module, "check_random_patterns",
                                _raise_budget())
        elif kill == "symbolic_01x":
            monkeypatch.setattr(ladder_module, "check_symbolic_01x",
                                _raise_budget())
        elif kill == "local":
            monkeypatch.setattr(ladder_module, "local_check_from_context",
                                _raise_budget())
        elif kill == "output_exact":
            monkeypatch.setattr(ladder_module,
                                "output_exact_from_context",
                                _raise_budget())
        else:
            monkeypatch.setattr(ladder_module,
                                "input_exact_from_context",
                                _raise_budget())
        results = run_ladder(spec, partial, patterns=20, seed=0,
                             stop_at_first_error=False,
                             budget=Budget(max_live_nodes=10**9))
        assert [r.check for r in results] == expect_completed + [kill]
        last = results[-1]
        assert last.outcome == OUTCOME_INCONCLUSIVE
        assert all(r.outcome == OUTCOME_OK for r in results[:-1])
        # Strongest completed level's verdict is carried.
        assert last.error_found is False
        assert last.stats["completed_levels"] == len(expect_completed)
        assert last.stats["budget_resource"] == "live_nodes"
        if expect_completed:
            strongest = expect_completed[-1]
            assert strongest in last.detail
            assert "%s_seconds" % strongest in last.stats
        else:
            assert "no level completed" in last.detail

    def test_strongest_verdict_is_error_found(self, monkeypatch):
        # figure2a: every rung finds the error; killing input_exact
        # must carry output_exact's positive verdict.
        from repro.generators import figure2a

        spec, partial = figure2a()
        monkeypatch.setattr(ladder_module, "input_exact_from_context",
                            _raise_budget())
        results = run_ladder(spec, partial, patterns=20, seed=1,
                             stop_at_first_error=False,
                             budget=Budget(max_live_nodes=10**9))
        last = results[-1]
        assert last.outcome == OUTCOME_INCONCLUSIVE
        assert last.error_found is True
        assert "error found" in last.detail

    def test_real_node_limit_degrades_not_raises(self):
        spec, partial = figure3b()
        results = run_ladder(spec, partial, patterns=20, seed=1,
                             stop_at_first_error=False,
                             budget=Budget(max_live_nodes=10,
                                           check_interval=1))
        assert results[-1].outcome == OUTCOME_INCONCLUSIVE
        assert results[-1].stats["budget_resource"] == "live_nodes"

    def test_no_budget_behaviour_unchanged(self):
        spec, partial = figure3b()
        plain = run_ladder(spec, partial, patterns=20, seed=1,
                           stop_at_first_error=False)
        governed = run_ladder(spec, partial, patterns=20, seed=1,
                              stop_at_first_error=False,
                              budget=Budget(max_live_nodes=10**9))
        assert [(r.check, r.outcome, r.error_found) for r in plain] \
            == [(r.check, r.outcome, r.error_found) for r in governed]


@st.composite
def _expressions(draw):
    """A small random Boolean expression over 4 variables, as a plan."""
    ops = draw(st.lists(
        st.tuples(st.sampled_from("&|^"), st.integers(0, 3),
                  st.booleans()),
        min_size=1, max_size=12))
    return ops


class TestBudgetNeverChangesResults:
    @settings(max_examples=30, deadline=None)
    @given(plan=_expressions())
    def test_governed_equals_ungoverned(self, plan):
        """An unhit budget never changes any BDD result (property)."""
        def build(bdd):
            xs = bdd.add_vars("wxyz")
            acc = xs[0]
            for op, idx, negate in plan:
                operand = ~xs[idx] if negate else xs[idx]
                if op == "&":
                    acc = acc & operand
                elif op == "|":
                    acc = acc | operand
                else:
                    acc = acc ^ operand
            return acc

        plain_bdd = Bdd()
        plain = build(plain_bdd)
        governed_bdd = Bdd()
        governed_bdd.set_budget(Budget(max_live_nodes=10**9,
                                       wall_seconds=10**6,
                                       max_steps=10**12,
                                       check_interval=1))
        governed = build(governed_bdd)
        assert plain.node == governed.node
        assert plain.size() == governed.size()
        assert plain.sat_count(nvars=4) == governed.sat_count(nvars=4)
