"""Tests for the repro.resilience robustness layer."""
