"""Hypothesis differential suite: SAT engines vs. BDD engines.

The portfolio (docs/sat.md) is only sound if both engines decide the
same question.  These properties drive random netlists — and random
mutations of them — through the miter-SAT / dual-rail-SAT / CEGAR
encodings and the corresponding BDD algorithms, and demand identical
verdicts every time.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import check_equivalence, check_symbolic_01x
from repro.core.output_exact import check_output_exact
from repro.generators import random_logic
from repro.partial import (PartialImplementation, insert_random_error,
                           make_partial)
from repro.sat import (check_equivalence_sat, check_output_exact_sat,
                       check_symbolic_01x_sat)

SLOW = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def _mutated(circuit, seed):
    mutated, _ = insert_random_error(circuit, random.Random(seed))
    return mutated


@SLOW
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       mutate=st.booleans())
def test_miter_sat_matches_bdd_equivalence(seed, mutate):
    spec = random_logic(num_inputs=6, num_outputs=3, num_gates=18,
                        seed=seed)
    impl = _mutated(spec, seed) if mutate else spec
    sat = check_equivalence_sat(spec, impl)
    bdd = check_equivalence(spec, impl)
    assert sat.equivalent == bdd.equivalent
    if not sat.equivalent:
        # The SAT witness must really distinguish the pair.
        assert spec.evaluate(sat.counterexample) \
            != impl.evaluate(sat.counterexample)


@SLOW
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       mutate=st.booleans())
def test_dual_rail_sat_matches_bdd_symbolic_01x(seed, mutate):
    spec = random_logic(num_inputs=6, num_outputs=3, num_gates=20,
                        seed=seed)
    partial = make_partial(spec, fraction=0.2, num_boxes=1, seed=seed)
    circuit = (_mutated(partial.circuit, seed) if mutate
               else partial.circuit)
    case = PartialImplementation(circuit, partial.boxes)
    assert (check_symbolic_01x_sat(spec, case).error_found
            == check_symbolic_01x(spec, case).error_found)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       mutate=st.booleans())
def test_cegar_sat_matches_bdd_output_exact(seed, mutate):
    spec = random_logic(num_inputs=5, num_outputs=2, num_gates=14,
                        seed=seed)
    partial = make_partial(spec, fraction=0.2, num_boxes=1, seed=seed)
    circuit = (_mutated(partial.circuit, seed) if mutate
               else partial.circuit)
    case = PartialImplementation(circuit, partial.boxes)
    assert (check_output_exact_sat(spec, case).error_found
            == check_output_exact(spec, case).error_found)
