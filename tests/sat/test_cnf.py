"""Tests for Tseitin encoding of netlists."""

import itertools

import pytest

from repro.circuit import CircuitBuilder, CircuitError, GateType
from repro.generators import alu4_like
from repro.sat import Cnf, Solver, TseitinEncoder


def enumerate_models(circuit):
    """All (input assignment, output values) via the SAT encoding."""
    encoder = TseitinEncoder()
    net_map = encoder.encode_circuit(circuit)
    solver = Solver(encoder.cnf)
    for bits in itertools.product((False, True),
                                  repeat=len(circuit.inputs)):
        assumptions = []
        for net, value in zip(circuit.inputs, bits):
            var = net_map[net]
            assumptions.append(var if value else -var)
        result = solver.solve(assumptions)
        assert result.satisfiable   # circuits are total functions
        yield dict(zip(circuit.inputs, bits)), {
            net: result.model[net_map[net]] for net in circuit.outputs}


class TestGateEncodings:
    @pytest.mark.parametrize("gtype", [
        GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
        GateType.XOR, GateType.XNOR])
    @pytest.mark.parametrize("arity", [1, 2, 3, 4])
    def test_nary_gates_match_evaluation(self, gtype, arity):
        builder = CircuitBuilder()
        ins = builder.inputs("x", arity)
        builder.output(builder.gate(gtype, ins), "f")
        circuit = builder.build()
        for asg, out in enumerate_models(circuit):
            assert out["f"] == circuit.evaluate(asg)["f"], (gtype, asg)

    def test_not_buf_const(self):
        builder = CircuitBuilder()
        x = builder.input("x")
        builder.output(builder.not_(x), "f_not")
        builder.output(builder.buf(x), "f_buf")
        builder.output(builder.const(True), "f_one")
        builder.output(builder.const(False), "f_zero")
        circuit = builder.build()
        for asg, out in enumerate_models(circuit):
            want = circuit.evaluate(asg)
            assert out == want

    def test_whole_alu_on_sample_vectors(self):
        circuit = alu4_like()
        encoder = TseitinEncoder()
        net_map = encoder.encode_circuit(circuit)
        solver = Solver(encoder.cnf)
        import random
        rng = random.Random(1)
        for _ in range(10):
            asg = {n: bool(rng.getrandbits(1)) for n in circuit.inputs}
            assumptions = [net_map[n] if v else -net_map[n]
                           for n, v in asg.items()]
            result = solver.solve(assumptions)
            want = circuit.evaluate(asg)
            for net in circuit.outputs:
                assert result.model[net_map[net]] == want[net]


class TestSharing:
    def test_prefix_keeps_internals_apart(self):
        builder = CircuitBuilder()
        x = builder.input("x")
        builder.output(builder.not_(x, out="t"), "t")
        circuit = builder.build()
        encoder = TseitinEncoder()
        m1 = encoder.encode_circuit(circuit, prefix="a/")
        m2 = encoder.encode_circuit(circuit, prefix="b/")
        assert m1["x"] == m2["x"]          # inputs shared
        assert m1["t"] != m2["t"]          # internals separated

    def test_free_nets_shared(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        builder.output(builder.and_(a, "z"), "f")
        circuit = builder.circuit
        circuit.validate(allow_free=True)
        encoder = TseitinEncoder()
        m1 = encoder.encode_circuit(circuit, prefix="a/")
        m2 = encoder.encode_circuit(circuit, prefix="b/")
        assert m1["z"] == m2["z"]

    def test_var_of_allocates_once(self):
        encoder = TseitinEncoder()
        assert encoder.var_of("net") == encoder.var_of("net")
        assert encoder.has_net("net")
        assert not encoder.has_net("other")
