"""The deterministic BDD/SAT portfolio race (repro.core.portfolio)."""

import pytest

from repro.bdd import default_bdd
from repro.core import run_ladder
from repro.core.portfolio import (BASE_QUANTUM, normalize_strategy,
                                  race, race_output_exact,
                                  race_symbolic_01x)
from repro.core.result import OUTCOME_INCONCLUSIVE
from repro.generators import ALL_FIGURES, comp_like, figure2a
from repro.partial import make_partial
from repro.resilience.budget import Budget, BudgetExceededError


class TestNormalizeStrategy:
    def test_default_forms(self):
        assert normalize_strategy(None) is None
        assert normalize_strategy("") is None
        assert normalize_strategy("bdd") is None

    def test_explicit_forms(self):
        assert normalize_strategy("portfolio") == "portfolio"
        assert normalize_strategy("sat") == "sat"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            normalize_strategy("magic")


class TestRace:
    def test_winner_is_deterministic(self):
        spec = comp_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=1, seed=3)
        runs = []
        for _ in range(2):
            result = race_symbolic_01x(spec, partial, default_bdd())
            runs.append((result.error_found, result.stats["engine"],
                         result.stats["race_rounds"],
                         result.stats["race_steps"]))
        assert runs[0] == runs[1]

    def test_result_uses_rung_name(self):
        spec = comp_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=1, seed=3)
        result = race_symbolic_01x(spec, partial, default_bdd())
        assert result.check == "symbolic_01x"
        result = race_output_exact(spec, partial, default_bdd())
        assert result.check == "output_exact"
        assert result.stats["engine"] in ("sat", "bdd")

    def test_sat_strategy_runs_sat_alone(self):
        spec, partial = figure2a()
        result = race_symbolic_01x(spec, partial, default_bdd(),
                                   strategy="sat")
        assert result.stats["engine"] == "sat"
        assert "race_rounds" not in result.stats

    def test_tie_goes_to_first_engine(self):
        win = object()

        def fast(piece):
            from repro.core.result import CheckResult

            return CheckResult(check="x", error_found=False)

        result = race("x", [("sat", fast), ("bdd", fast)])
        assert result.stats["engine"] == "sat"
        assert result.stats["race_rounds"] == 1

    def test_parked_engine_retried_with_bigger_quantum(self):
        from repro.core.result import CheckResult

        quanta = []

        def always_parks(piece):
            quanta.append(piece.max_steps)
            raise BudgetExceededError("steps", "test",
                                      piece.max_steps,
                                      piece.max_steps)

        def wins_late(piece):
            if piece.max_steps <= BASE_QUANTUM:
                raise BudgetExceededError("steps", "test",
                                          piece.max_steps,
                                          piece.max_steps)
            return CheckResult(check="x", error_found=True)

        result = race("x", [("sat", always_parks), ("bdd", wins_late)])
        assert result.stats["engine"] == "bdd"
        assert result.stats["race_rounds"] == 4
        assert quanta[1] > quanta[0]

    def test_non_step_trip_reraises(self):
        def blows_nodes(piece):
            raise BudgetExceededError("live_nodes", "mk", 100, 10)

        with pytest.raises(BudgetExceededError) as err:
            race("x", [("bdd", blows_nodes)])
        assert err.value.resource == "live_nodes"

    def test_outer_step_budget_is_charged_and_honoured(self):
        spec = comp_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=1, seed=3)
        outer = Budget(max_steps=10 ** 9).start()
        race_output_exact(spec, partial, default_bdd(), budget=outer)
        assert outer.steps > 0

        tight = Budget(max_steps=50, check_interval=1).start()
        with pytest.raises(BudgetExceededError) as err:
            race_output_exact(spec, partial, default_bdd(),
                              budget=tight)
        assert err.value.resource == "steps"

    def test_ctx_built_by_race_is_shared_back(self):
        spec = comp_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=1, seed=3)
        holder = [None]
        result = race_output_exact(spec, partial, default_bdd(),
                                   holder)
        if result.stats["engine"] == "bdd":
            assert holder[0] is not None


class TestLadderStrategies:
    @pytest.mark.parametrize("name", list(ALL_FIGURES))
    @pytest.mark.parametrize("strategy", ["portfolio", "sat"])
    def test_verdicts_match_default_ladder(self, name, strategy):
        factory, _ = ALL_FIGURES[name]
        spec, partial = factory()
        base = run_ladder(spec, partial, patterns=50, seed=0,
                          stop_at_first_error=False)
        under = run_ladder(spec, partial, patterns=50, seed=0,
                           stop_at_first_error=False,
                           strategy=strategy)
        assert [r.check for r in base] == [r.check for r in under]
        for b, u in zip(base, under):
            assert b.error_found == u.error_found
            if u.check in ("symbolic_01x", "output_exact"):
                assert u.stats["engine"] in ("sat", "bdd")

    def test_winner_stable_across_runs(self):
        spec = comp_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=1, seed=5)
        winners = []
        for _ in range(2):
            results = run_ladder(spec, partial, patterns=20, seed=0,
                                 stop_at_first_error=False,
                                 strategy="portfolio")
            winners.append([r.stats.get("engine") for r in results])
        assert winners[0] == winners[1]

    def test_budget_degradation_still_works(self):
        spec = comp_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=1, seed=5)
        budget = Budget(max_steps=60, check_interval=1)
        results = run_ladder(spec, partial,
                             checks=("symbolic_01x", "output_exact"),
                             budget=budget, strategy="portfolio")
        assert results[-1].outcome == OUTCOME_INCONCLUSIVE

    def test_bad_strategy_rejected(self):
        spec, partial = figure2a()
        with pytest.raises(ValueError):
            run_ladder(spec, partial, strategy="magic")
