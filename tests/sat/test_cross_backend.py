"""Cross-backend property test: SAT checks == BDD checks, always.

The two backends implement the same mathematical checks (the paper's
future-work comparison); on random instances they must never disagree.
"""

import pytest

from repro.core import check_output_exact, check_symbolic_01x
from repro.sat import check_output_exact_sat, check_symbolic_01x_sat

from tests.core.test_monotonicity import random_tiny_instance


@pytest.mark.parametrize("seed", range(20))
def test_backends_agree_on_random_instances(seed):
    instance = random_tiny_instance(seed + 500)
    if instance is None:
        pytest.skip("no box in this instance")
    spec, partial = instance

    bdd_01x = check_symbolic_01x(spec, partial).error_found
    sat_01x = check_symbolic_01x_sat(spec, partial).error_found
    assert bdd_01x == sat_01x

    bdd_oe = check_output_exact(spec, partial).error_found
    sat_oe = check_output_exact_sat(spec, partial).error_found
    assert bdd_oe == sat_oe
