"""Tests for DIMACS I/O."""

import pytest

from repro.sat import Cnf, Solver
from repro.sat.dimacs import loads_dimacs, read_dimacs, write_dimacs


SAMPLE = """\
c a comment
p cnf 3 3
1 -2 0
2 3 0
-1 0
"""


class TestParsing:
    def test_sample(self):
        cnf = loads_dimacs(SAMPLE)
        assert cnf.num_vars == 3
        assert cnf.clauses == [(1, -2), (2, 3), (-1,)]
        result = Solver(cnf).solve()
        assert result.satisfiable
        assert not result.model[1] and not result.model[2]
        assert result.model[3]

    def test_multiline_clause(self):
        cnf = loads_dimacs("p cnf 4 1\n1 2\n3 4 0\n")
        assert cnf.clauses == [(1, 2, 3, 4)]

    def test_missing_trailing_zero(self):
        cnf = loads_dimacs("p cnf 2 1\n1 2\n")
        assert cnf.clauses == [(1, 2)]

    def test_vars_grow_beyond_header(self):
        cnf = loads_dimacs("p cnf 1 1\n5 0\n")
        assert cnf.num_vars == 5

    def test_satlib_trailer(self):
        cnf = loads_dimacs("p cnf 1 1\n1 0\n%\n0\n")
        assert cnf.clauses == [(1,)]

    def test_malformed_header(self):
        with pytest.raises(ValueError):
            loads_dimacs("p wrong 1 1\n")


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        cnf = Cnf()
        cnf.num_vars = 4
        cnf.add_clause([1, -3])
        cnf.add_clause([2, 4, -1])
        path = tmp_path / "f.cnf"
        write_dimacs(cnf, str(path))
        back = read_dimacs(str(path))
        assert back.clauses == cnf.clauses
        assert back.num_vars == cnf.num_vars
