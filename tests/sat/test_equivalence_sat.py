"""Tests for SAT-based miter equivalence checking."""

import random

import pytest

from repro.circuit import CircuitBuilder, CircuitError
from repro.core import check_equivalence
from repro.generators import alu4_like, ripple_adder_circuit
from repro.generators.comparator import magnitude_comparator
from repro.partial import insert_random_error
from repro.sat import build_miter, check_equivalence_sat


class TestMiterConstruction:
    def test_miter_unsat_for_identical(self):
        spec = ripple_adder_circuit(3)
        cnf, inputs, _ = build_miter(spec, spec.copy())
        from repro.sat import Solver

        assert not Solver(cnf).solve().satisfiable

    def test_interface_mismatch_rejected(self):
        b1 = CircuitBuilder()
        b1.input("a")
        b1.output(b1.buf("a"), "f")
        b2 = CircuitBuilder()
        b2.input("b")
        b2.output(b2.buf("b"), "f")
        with pytest.raises(CircuitError):
            build_miter(b1.build(), b2.build())


class TestAgainstBddChecker:
    @pytest.mark.parametrize("factory", [
        lambda: ripple_adder_circuit(6),
        lambda: magnitude_comparator(6),
        alu4_like,
    ])
    def test_self_equivalence(self, factory):
        spec = factory()
        assert check_equivalence_sat(spec, spec.copy()).equivalent

    @pytest.mark.parametrize("seed", range(8))
    def test_mutants_agree_with_bdd(self, seed):
        spec = alu4_like()
        mutant, _ = insert_random_error(spec, random.Random(seed))
        bdd_result = check_equivalence(spec, mutant)
        sat_result = check_equivalence_sat(spec, mutant)
        assert bdd_result.equivalent == sat_result.equivalent
        if not sat_result.equivalent:
            cex = sat_result.counterexample
            s = spec.evaluate(cex)
            m = mutant.evaluate(cex)
            assert [s[n] for n in spec.outputs] \
                != [m[n] for n in mutant.outputs]
            assert sat_result.failing_output in spec.outputs

    def test_partial_circuit_rejected(self):
        builder = CircuitBuilder()
        builder.input("a")
        builder.output(builder.and_("a", "z"), "f")
        partial = builder.circuit
        partial.validate(allow_free=True)
        ok = CircuitBuilder()
        ok.input("a")
        ok.output(ok.buf("a"), "f")
        with pytest.raises(CircuitError):
            check_equivalence_sat(partial, ok.build())
