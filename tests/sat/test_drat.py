"""DRAT proof logging and the in-repo RUP checker."""

import pytest

from repro.circuit import CircuitBuilder
from repro.sat import (Cnf, Solver, check_drat, check_equivalence_sat,
                       parse_proof)


def _cnf(clauses):
    cnf = Cnf()
    top = max(abs(lit) for clause in clauses for lit in clause)
    while cnf.num_vars < top:
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


class TestParseProof:
    def test_adds_and_deletes(self):
        steps = parse_proof(["1 2 0", "d -1 3 0", "0"])
        assert steps == [(False, (1, 2)), (True, (-1, 3)),
                         (False, ())]

    def test_comments_and_blanks_skipped(self):
        steps = parse_proof(["c a comment", "", "1 0"])
        assert steps == [(False, (1,))]

    def test_missing_terminator_rejected(self):
        with pytest.raises(ValueError):
            parse_proof(["1 2"])


class TestCheckDrat:
    #: Pinned refutation of the four-clause contradiction over x1, x2.
    CONTRADICTION = [(1, 2), (1, -2), (-1, 2), (-1, -2)]
    PINNED_PROOF = "1 0\n0\n"

    def test_pinned_proof_accepted(self):
        assert check_drat(self.CONTRADICTION, self.PINNED_PROOF)

    def test_truncated_proof_rejected(self):
        assert not check_drat(self.CONTRADICTION, "1 0\n")

    def test_non_rup_step_rejected(self):
        # x3 is a fresh variable: the unit (3) is not RUP here.
        assert not check_drat(self.CONTRADICTION, "3 0\n0\n")

    def test_empty_clause_must_be_rup(self):
        assert not check_drat([(1, 2)], "0\n")

    def test_strict_deletes(self):
        proof = "d 5 6 0\n1 0\n0\n"
        assert not check_drat(self.CONTRADICTION, proof)
        assert check_drat(self.CONTRADICTION, proof,
                          strict_deletes=False)

    def test_deleting_a_needed_clause_breaks_the_proof(self):
        proof = "d 1 2 0\nd 1 -2 0\n1 0\n0\n"
        assert not check_drat(self.CONTRADICTION, proof)


def _pigeonhole(holes):
    """PHP(holes+1, holes): unsatisfiable, resolution-hard."""
    cnf = Cnf()
    pigeons = holes + 1
    var = {(p, h): cnf.new_var()
           for p in range(pigeons) for h in range(holes)}
    for p in range(pigeons):
        cnf.add_clause([var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, holes + 1):
                cnf.add_clause((-var[p1, h], -var[p2, h]))
    return cnf


class TestSolverProofs:
    def test_unsat_solve_yields_checkable_proof(self):
        cnf = _pigeonhole(3)
        solver = Solver(cnf, proof_log=True)
        result = solver.solve()
        assert not result.satisfiable
        assert solver.proof[-1] == "0"
        assert check_drat(cnf, solver.proof)

    def test_proof_with_db_reduction_still_checks(self):
        # A tiny reduce_base forces clause deletion mid-search; the
        # logged "d" lines must keep the proof checkable.
        cnf = _pigeonhole(4)
        solver = Solver(cnf, proof_log=True, reduce_base=20,
                        reduce_inc=10)
        result = solver.solve()
        assert not result.satisfiable
        assert solver.learned_deleted > 0
        assert any(line.startswith("d ") for line in solver.proof)
        assert check_drat(cnf, solver.proof)

    def test_corrupted_proof_rejected(self):
        cnf = _pigeonhole(3)
        solver = Solver(cnf, proof_log=True)
        solver.solve()
        truncated = solver.proof[:-1]
        assert not check_drat(cnf, truncated)
        mangled = ["99 0"] + solver.proof
        assert not check_drat(cnf, mangled)

    def test_sat_solve_logs_no_empty_clause(self):
        cnf = _cnf([(1, 2), (-1, 2)])
        solver = Solver(cnf, proof_log=True)
        assert solver.solve().satisfiable
        assert "0" not in solver.proof


class TestMiterProof:
    def _miter_pair(self):
        from repro.circuit.gates import GateType

        build = CircuitBuilder(name="spec")
        build.input("a")
        build.input("b")
        build.gate(GateType.AND, ["a", "b"], out="y")
        build.output("y")
        spec = build.circuit
        build = CircuitBuilder(name="impl")
        build.input("a")
        build.input("b")
        build.gate(GateType.AND, ["b", "a"], out="y")
        build.output("y")
        return spec, build.circuit

    def test_equivalent_pair_proof_verifies(self):
        spec, impl = self._miter_pair()
        res = check_equivalence_sat(spec, impl, proof=True)
        assert res.equivalent
        assert res.proof
        assert check_drat(res.miter_cnf, res.proof)

    def test_benchmark_self_miter_proof_verifies(self):
        from repro.generators import comp_like

        spec = comp_like()
        res = check_equivalence_sat(spec, spec, proof=True)
        assert res.equivalent
        assert check_drat(res.miter_cnf, res.proof)
