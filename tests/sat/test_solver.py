"""Tests for the CDCL SAT solver."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import Cnf, Solver
from repro.sat.solver import _luby


def brute_force_sat(num_vars, clauses):
    for model in range(1 << num_vars):
        if all(any((lit > 0) == bool((model >> (abs(lit) - 1)) & 1)
                   for lit in clause) for clause in clauses):
            return True
    return False


def model_satisfies(model, clauses):
    return all(any((lit > 0) == model[abs(lit)] for lit in clause)
               for clause in clauses)


class TestLuby:
    def test_prefix(self):
        want = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [_luby(i) for i in range(15)] == want


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert Solver().solve().satisfiable

    def test_unit_clauses(self):
        s = Solver()
        s.ensure_vars(2)
        s.add_clause([1])
        s.add_clause([-2])
        result = s.solve()
        assert result.satisfiable
        assert result.model[1] and not result.model[2]

    def test_contradiction(self):
        s = Solver()
        s.ensure_vars(1)
        s.add_clause([1])
        assert not s.add_clause([-1])
        assert not s.solve().satisfiable

    def test_tautology_dropped(self):
        s = Solver()
        s.ensure_vars(1)
        assert s.add_clause([1, -1])
        assert s.solve().satisfiable

    def test_duplicate_literals_deduped(self):
        s = Solver()
        s.ensure_vars(2)
        s.add_clause([1, 1, 2])
        assert s.solve().satisfiable

    def test_zero_literal_rejected(self):
        s = Solver()
        with pytest.raises(ValueError):
            s.add_clause([0])

    def test_pigeonhole_3_into_2_unsat(self):
        # p_{i,j}: pigeon i in hole j. vars 1..6
        def var(i, j):
            return i * 2 + j + 1
        s = Solver()
        s.ensure_vars(6)
        for i in range(3):
            s.add_clause([var(i, 0), var(i, 1)])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    s.add_clause([-var(i1, j), -var(i2, j)])
        assert not s.solve().satisfiable


class TestAssumptions:
    def test_assumptions_restrict(self):
        s = Solver()
        s.ensure_vars(2)
        s.add_clause([1, 2])
        assert s.solve(assumptions=[-1]).model[2]
        assert not s.solve(assumptions=[-1, -2]).satisfiable

    def test_solver_reusable_after_assumptions(self):
        s = Solver()
        s.ensure_vars(2)
        s.add_clause([1, 2])
        assert not s.solve(assumptions=[-1, -2]).satisfiable
        assert s.solve().satisfiable
        assert s.solve(assumptions=[-2]).model[1]

    def test_incremental_clause_addition(self):
        s = Solver()
        s.ensure_vars(3)
        s.add_clause([1, 2, 3])
        assert s.solve().satisfiable
        s.add_clause([-1])
        s.add_clause([-2])
        result = s.solve()
        assert result.satisfiable and result.model[3]
        s.add_clause([-3])
        assert not s.solve().satisfiable


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_3sat(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 10)
        m = rng.randint(1, 42)
        clauses = []
        for _ in range(m):
            width = min(n, rng.choice((1, 2, 3, 3)))
            lits = [v * rng.choice((1, -1))
                    for v in rng.sample(range(1, n + 1), width)]
            clauses.append(lits)
        cnf = Cnf()
        cnf.num_vars = n
        for clause in clauses:
            cnf.add_clause(clause)
        result = Solver(cnf).solve()
        assert result.satisfiable == brute_force_sat(n, clauses), seed
        if result.satisfiable:
            assert model_satisfies(result.model, clauses)

    def test_conflict_budget(self):
        rng = random.Random(99)
        s = Solver()
        n = 24
        s.ensure_vars(n)
        for _ in range(150):
            s.add_clause([v * rng.choice((1, -1))
                          for v in rng.sample(range(1, n + 1), 3)])
        with pytest.raises(RuntimeError):
            s.solve(conflict_budget=0)


class TestCnfContainer:
    def test_dimacs_format(self):
        cnf = Cnf()
        cnf.num_vars = 3
        cnf.add_clause([1, -2])
        cnf.add_clause([3])
        text = cnf.to_dimacs()
        assert text.splitlines()[0] == "p cnf 3 2"
        assert "1 -2 0" in text

    def test_literal_range_checked(self):
        cnf = Cnf()
        with pytest.raises(ValueError):
            cnf.add_clause([1])
        cnf.num_vars = 1
        cnf.add_clause([1])
        with pytest.raises(ValueError):
            cnf.add_clause([2])

    def test_repr(self):
        cnf = Cnf()
        assert "0 vars" in repr(cnf)


def _random_3sat(num_vars, num_clauses, seed):
    rng = random.Random(seed)
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    for _ in range(num_clauses):
        lits = rng.sample(range(1, num_vars + 1), 3)
        cnf.add_clause([lit if rng.random() < 0.5 else -lit
                        for lit in lits])
    return cnf


class TestRunStatistics:
    def test_stats_reported_per_run(self):
        cnf = _random_3sat(30, 126, seed=7)
        solver = Solver(cnf)
        result = solver.solve()
        for key in ("decisions", "propagations", "conflicts",
                    "restarts", "learned", "deleted"):
            assert key in result.stats
        assert result.stats["decisions"] == solver.decisions
        assert result.stats["propagations"] == solver.propagations
        assert result.stats["propagations"] > 0

    def test_stats_reset_between_runs(self):
        cnf = _random_3sat(30, 126, seed=7)
        solver = Solver(cnf)
        first = solver.solve()
        second = solver.solve()
        # Phase saving replays the first run's final assignment, so the
        # second run is much cheaper — but the per-run stats must not
        # accumulate across solve() calls.
        assert second.stats["decisions"] <= first.stats["decisions"] \
            or second.stats["conflicts"] <= first.stats["conflicts"]
        assert second.stats["conflicts"] == solver.conflicts

    def test_luby_restarts_fire_on_hard_instances(self):
        # An over-constrained random instance forces well over 32
        # conflicts (the first Luby restart threshold).
        for seed in range(20):
            cnf = _random_3sat(40, 210, seed=seed)
            solver = Solver(cnf)
            solver.solve()
            if solver.restarts > 0:
                assert solver.conflicts >= 32
                break
        else:
            pytest.fail("no instance triggered a restart")

    def test_clause_db_reduction_deletes_learned_clauses(self):
        from tests.sat.test_drat import _pigeonhole

        cnf = _pigeonhole(4)
        solver = Solver(cnf, reduce_base=20, reduce_inc=10)
        result = solver.solve()
        assert not result.satisfiable
        assert solver.learned_deleted > 0
        assert result.stats["deleted"] == solver.learned_deleted
        assert result.stats["learned"] > result.stats["deleted"]

    def test_reduction_preserves_verdicts(self):
        for seed in range(8):
            cnf = _random_3sat(25, 105, seed=seed)
            plain = Solver(cnf).solve()
            reduced = Solver(cnf, reduce_base=10,
                             reduce_inc=5).solve()
            assert plain.satisfiable == reduced.satisfiable

    def test_budget_cancels_deterministically(self):
        from repro.resilience.budget import (Budget,
                                             BudgetExceededError)
        from tests.sat.test_drat import _pigeonhole

        cnf = _pigeonhole(5)
        steps = []
        for _ in range(2):
            budget = Budget(max_steps=500, check_interval=1).start()
            solver = Solver(cnf)
            with pytest.raises(BudgetExceededError) as err:
                solver.solve(budget=budget)
            assert err.value.resource == "steps"
            steps.append((budget.steps, solver.conflicts,
                          solver.decisions))
        assert steps[0] == steps[1]

    def test_solver_usable_after_budget_trip(self):
        from repro.resilience.budget import (Budget,
                                             BudgetExceededError)
        from tests.sat.test_drat import _pigeonhole

        cnf = _pigeonhole(4)
        solver = Solver(cnf)
        with pytest.raises(BudgetExceededError):
            solver.solve(budget=Budget(max_steps=100,
                                       check_interval=1).start())
        result = solver.solve()
        assert not result.satisfiable
