"""Tests for the SAT/CEGAR Black Box checks and dual-rail expansion."""

import random

import pytest

from repro.circuit import CircuitBuilder, GateType
from repro.core import check_output_exact, check_symbolic_01x
from repro.generators import (ALL_FIGURES, alu4_like, term1_like)
from repro.partial import (PartialImplementation, insert_random_error,
                           make_partial)
from repro.sat import (check_output_exact_sat, check_symbolic_01x_sat,
                       dual_rail_expand)
from repro.sim import ONE, X, ZERO, simulate_ternary


class TestDualRailExpand:
    def test_matches_scalar_ternary(self):
        spec = alu4_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=2, seed=8)
        circuit = partial.circuit
        dual = dual_rail_expand(circuit)
        rng = random.Random(5)
        for _ in range(25):
            asg = {n: bool(rng.getrandbits(1)) for n in circuit.inputs}
            scalar = simulate_ternary(
                circuit, {n: int(v) for n, v in asg.items()})
            rails = dual.evaluate(asg)
            for index, net in enumerate(circuit.outputs):
                hi = rails[dual.outputs[2 * index]]
                lo = rails[dual.outputs[2 * index + 1]]
                want = scalar[net]
                got = ONE if hi else (ZERO if lo else X)
                assert got == want, (net, asg)

    def test_complete_circuit_is_never_unknown(self):
        spec = alu4_like()
        dual = dual_rail_expand(spec)
        rng = random.Random(2)
        for _ in range(10):
            asg = {n: bool(rng.getrandbits(1)) for n in spec.inputs}
            rails = dual.evaluate(asg)
            for index in range(len(spec.outputs)):
                hi = rails[dual.outputs[2 * index]]
                lo = rails[dual.outputs[2 * index + 1]]
                assert hi != lo   # definite, and consistent

    def test_gate_type_coverage(self):
        builder = CircuitBuilder()
        a, b = builder.input("a"), builder.input("b")
        builder.output(builder.nand_(a, "z", b), "f1")
        builder.output(builder.xnor_(a, "z"), "f2")
        builder.output(builder.nor_("z", "z"), "f3")
        builder.output(builder.const(True), "f4")
        circuit = builder.circuit
        circuit.validate(allow_free=True)
        dual = dual_rail_expand(circuit)
        for bits in range(4):
            asg = {"a": bool(bits & 1), "b": bool(bits & 2)}
            scalar = simulate_ternary(
                circuit, {n: int(v) for n, v in asg.items()})
            rails = dual.evaluate(asg)
            for index, net in enumerate(circuit.outputs):
                hi = rails[dual.outputs[2 * index]]
                lo = rails[dual.outputs[2 * index + 1]]
                got = ONE if hi else (ZERO if lo else X)
                assert got == scalar[net]


class TestSat01xCheck:
    @pytest.mark.parametrize("name", list(ALL_FIGURES))
    def test_agrees_with_bdd_on_figures(self, name):
        factory, _ = ALL_FIGURES[name]
        spec, partial = factory()
        bdd_verdict = check_symbolic_01x(spec, partial).error_found
        sat_result = check_symbolic_01x_sat(spec, partial)
        assert sat_result.error_found == bdd_verdict
        if sat_result.error_found:
            from repro.core.random_pattern import ternary_distinguishes

            assert ternary_distinguishes(
                spec, partial, sat_result.counterexample) is not None

    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_on_mutated_benchmark(self, seed):
        spec = term1_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=2,
                               seed=seed)
        mutated, _ = insert_random_error(partial.circuit,
                                         random.Random(seed))
        case = PartialImplementation(mutated, partial.boxes)
        assert (check_symbolic_01x_sat(spec, case).error_found
                == check_symbolic_01x(spec, case).error_found)


class TestCegarOutputExact:
    @pytest.mark.parametrize("name", list(ALL_FIGURES))
    def test_agrees_with_bdd_on_figures(self, name):
        factory, _ = ALL_FIGURES[name]
        spec, partial = factory()
        bdd_verdict = check_output_exact(spec, partial).error_found
        sat_result = check_output_exact_sat(spec, partial)
        assert sat_result.error_found == bdd_verdict
        assert sat_result.stats["iterations"] >= 1

    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_on_mutated_benchmark(self, seed):
        spec = alu4_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=1,
                               seed=seed)
        mutated, _ = insert_random_error(partial.circuit,
                                         random.Random(seed + 50))
        case = PartialImplementation(mutated, partial.boxes)
        assert (check_output_exact_sat(spec, case).error_found
                == check_output_exact(spec, case).error_found)

    def test_counterexample_defeats_every_z(self):
        """The CEGAR witness must be a real error: no box output can
        repair it (checked by brute force over the Z space)."""
        from repro.generators import figure3a

        spec, partial = figure3a()
        result = check_output_exact_sat(spec, partial)
        assert result.error_found
        cex = result.counterexample
        z_nets = partial.box_outputs
        for bits in range(1 << len(z_nets)):
            asg = dict(cex)
            for i, net in enumerate(z_nets):
                asg[net] = bool((bits >> i) & 1)
            impl_out = partial.circuit.evaluate(asg)
            spec_out = spec.evaluate(cex)
            assert [impl_out[n] for n in partial.circuit.outputs] \
                != [spec_out[n] for n in spec.outputs], bits


class TestUnconstrainedBoxOutput:
    def test_box_output_outside_every_cone(self):
        """A box output whose fanout never reaches a primary output is
        absent from the mismatch encoding; its CNF variable is only
        allocated when the CEGAR loop asks for the Z model.  The
        verifier must still cover it (regression: KeyError on comp
        with five boxes)."""
        from repro.generators import comp_like

        spec = comp_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=5, seed=2004)
        result = check_output_exact_sat(spec, partial)
        assert result.error_found \
            == check_output_exact(spec, partial).error_found
