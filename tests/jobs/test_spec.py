"""Tests for case enumeration and coordinate-derived seeds."""

import json

from repro.experiments.runner import CHECKS, ExperimentConfig
from repro.jobs import CaseSpec, derive_seed, enumerate_cases


class TestDeriveSeed:
    def test_pinned_values(self):
        # Cross-process / cross-version stability is the whole point:
        # these constants must never change, or old journals and
        # published tables stop being reproducible.
        assert derive_seed(2001, "alu4", 0, "partial") \
            == 16043175399511412495
        assert derive_seed(7, "comp", 1, 3, "mutation") \
            == 16753193596096690794

    def test_coordinates_matter(self):
        seeds = {derive_seed(1, "alu4", s, e, "mutation")
                 for s in range(4) for e in range(25)}
        assert len(seeds) == 100

    def test_float_canonicalisation(self):
        # 0.1 via JSON round trip is the same float, hence same seed.
        assert derive_seed(0.1) == derive_seed(json.loads(json.dumps(0.1)))
        assert derive_seed(0.1) != derive_seed("0.1aliased")


class TestCaseSpec:
    CASE = CaseSpec(benchmark="alu4", selection=1, error_index=3,
                    fraction=0.1, num_boxes=1, patterns=500, seed=2001,
                    checks=tuple(CHECKS))

    def test_dict_roundtrip_through_json(self):
        data = json.loads(json.dumps(self.CASE.to_dict()))
        assert CaseSpec.from_dict(data) == self.CASE
        assert CaseSpec.from_dict(data).key == self.CASE.key

    def test_key_distinguishes_campaign_parameters(self):
        other = CaseSpec(benchmark="alu4", selection=1, error_index=3,
                         fraction=0.4, num_boxes=1, patterns=500,
                         seed=2001, checks=tuple(CHECKS))
        assert other.key != self.CASE.key

    def test_seeds_are_per_purpose(self):
        assert len({self.CASE.partial_seed, self.CASE.mutation_seed,
                    self.CASE.case_seed}) == 3

    def test_partial_seed_shared_within_selection(self):
        sibling = CaseSpec(benchmark="alu4", selection=1, error_index=9,
                           fraction=0.1, num_boxes=1, patterns=500,
                           seed=2001, checks=tuple(CHECKS))
        assert sibling.partial_seed == self.CASE.partial_seed
        assert sibling.mutation_seed != self.CASE.mutation_seed


class TestEnumerateCases:
    def test_order_and_count(self):
        config = ExperimentConfig(selections=2, errors=3,
                                  benchmarks=["alu4", "comp"])
        cases = enumerate_cases(config)
        assert len(cases) == 2 * 2 * 3
        assert [c.benchmark for c in cases[:6]] == ["alu4"] * 6
        assert [(c.selection, c.error_index) for c in cases[:6]] \
            == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_benchmarks_override(self):
        config = ExperimentConfig(selections=1, errors=2,
                                  benchmarks=["alu4", "comp"])
        cases = enumerate_cases(config, benchmarks=["comp"])
        assert {c.benchmark for c in cases} == {"comp"}

    def test_seeds_independent_of_campaign_size(self):
        # The enabling property for sharding and resume: a case's seeds
        # depend only on its coordinates, not on how many selections or
        # errors surround it in the campaign.
        small = ExperimentConfig(selections=2, errors=3,
                                 benchmarks=["alu4"])
        large = ExperimentConfig(selections=4, errors=10,
                                 benchmarks=["alu4"])
        by_coord = {(c.selection, c.error_index): c
                    for c in enumerate_cases(large)}
        for case in enumerate_cases(small):
            twin = by_coord[(case.selection, case.error_index)]
            assert case.partial_seed == twin.partial_seed
            assert case.mutation_seed == twin.mutation_seed
            assert case.case_seed == twin.case_seed
