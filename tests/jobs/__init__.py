"""Tests for the repro.jobs campaign engine."""
