"""Campaign-level static analysis: cache determinism and journaling."""

import json

from repro.experiments.export import rows_to_csv, rows_to_json
from repro.experiments.runner import ExperimentConfig, run_table
from repro.jobs.journal import CaseRecord, CheckOutcome
from repro.jobs.spec import CaseSpec, enumerate_cases
from repro.jobs.worker import clear_caches, execute_case


def _config(tmp_path, **overrides):
    params = dict(selections=1, errors=3, patterns=100,
                  benchmarks=["alu4"],
                  check_cache=str(tmp_path / "cache"))
    params.update(overrides)
    return ExperimentConfig(**params)


class TestWarmCacheDeterminism:
    def test_warm_rerun_is_byte_identical_with_hits(self, tmp_path):
        config = _config(tmp_path, preflight=True)
        clear_caches()
        cold = run_table(config)
        clear_caches()
        warm = run_table(config)
        assert rows_to_csv(cold) == rows_to_csv(warm)
        hits = sum(warm[0].check_cache_hits.values())
        assert hits > 0
        assert sum(cold[0].check_cache_hits.values()) == 0
        static = json.loads(rows_to_json(warm))[0]["static"]
        assert sum(static["check_cache_hits"].values()) == hits

    def test_cache_does_not_change_verdicts(self, tmp_path):
        base = run_table(_config(tmp_path, check_cache=None))
        clear_caches()
        cached = run_table(_config(tmp_path))
        assert [base[0].detected, base[0].valid] \
            == [cached[0].detected, cached[0].valid]

    def test_preflight_and_plain_verdicts_agree(self, tmp_path):
        plain = run_table(_config(tmp_path, check_cache=None))
        clear_caches()
        preflight = run_table(_config(tmp_path, check_cache=None,
                                      preflight=True))
        assert plain[0].detected == preflight[0].detected
        assert plain[0].valid == preflight[0].valid

    def test_preflight_cache_isolated_from_plain(self, tmp_path):
        # The same pair checked with and without preflight must not
        # share entries (the preflight run may restrict the pair).
        run_table(_config(tmp_path))
        clear_caches()
        warm_preflight = run_table(_config(tmp_path, preflight=True))
        assert sum(warm_preflight[0].check_cache_hits.values()) == 0


class TestCaseSpecRoundTrip:
    def test_static_fields_serialize(self):
        case = CaseSpec(benchmark="alu4", selection=0, error_index=1,
                        fraction=0.1, num_boxes=1, patterns=100,
                        seed=2001, checks=("r.p.", "ie"),
                        preflight=True, check_cache="/tmp/cc")
        data = case.to_dict()
        assert data["preflight"] is True
        assert data["check_cache"] == "/tmp/cc"
        assert CaseSpec.from_dict(data) == case

    def test_defaults_stay_off_the_wire(self):
        case = CaseSpec(benchmark="alu4", selection=0, error_index=1,
                        fraction=0.1, num_boxes=1, patterns=100,
                        seed=2001, checks=("r.p.",))
        data = case.to_dict()
        assert "preflight" not in data and "check_cache" not in data

    def test_preflight_is_part_of_the_key(self):
        kwargs = dict(benchmark="alu4", selection=0, error_index=1,
                      fraction=0.1, num_boxes=1, patterns=100,
                      seed=2001, checks=("r.p.",))
        plain = CaseSpec(**kwargs)
        preflight = CaseSpec(preflight=True, **kwargs)
        cached = CaseSpec(check_cache="/tmp/cc", **kwargs)
        assert plain.key != preflight.key
        # the cache only changes where verdicts come from, never what
        # they are, so it must NOT invalidate journal resume matching
        assert plain.key == cached.key

    def test_enumerate_cases_passes_static_config(self, tmp_path):
        config = _config(tmp_path, preflight=True)
        cases = enumerate_cases(config)
        assert all(c.preflight for c in cases)
        assert all(c.check_cache == config.check_cache for c in cases)


class TestJournalFields:
    def test_cached_flag_round_trips(self):
        outcome = CheckOutcome(error_found=True, cached=True)
        data = outcome.to_dict()
        assert data["cached"] is True
        assert CheckOutcome.from_dict(data).cached is True

    def test_cached_default_off_the_wire(self):
        assert "cached" not in CheckOutcome().to_dict()
        assert CheckOutcome.from_dict(
            CheckOutcome().to_dict()).cached is False

    def test_discharged_round_trips(self):
        case = CaseSpec(benchmark="alu4", selection=0, error_index=0,
                        fraction=0.1, num_boxes=1, patterns=100,
                        seed=2001, checks=("r.p.",))
        record = CaseRecord(case=case, discharged=3)
        line = record.to_json_line()
        assert CaseRecord.from_json_line(line).discharged == 3
        plain = CaseRecord(case=case)
        assert "discharged" not in plain.to_dict()
        assert CaseRecord.from_json_line(
            plain.to_json_line()).discharged is None


class TestWorkerShortCircuit:
    def test_cached_outcomes_marked_in_record(self, tmp_path):
        config = _config(tmp_path)
        case = enumerate_cases(config)[0]
        clear_caches()
        cold = execute_case(case)
        clear_caches()
        warm = execute_case(case)
        assert cold.outcome == warm.outcome
        assert not any(o.cached for o in cold.checks.values())
        cached = [name for name, o in warm.checks.items() if o.cached]
        assert cached  # at least the authoritative checks replay
        for name in cached:
            assert warm.checks[name].to_dict() == dict(
                cold.checks[name].to_dict(), cached=True)

    def test_preflight_discharge_count_recorded(self, tmp_path):
        config = _config(tmp_path, preflight=True, check_cache=None)
        case = enumerate_cases(config)[0]
        clear_caches()
        record = execute_case(case)
        assert record.discharged is not None
        plain_case = enumerate_cases(
            _config(tmp_path, check_cache=None))[0]
        assert execute_case(plain_case).discharged is None
