"""Campaign determinism and journaling under ``strategy="portfolio"``.

The race's winner must be a pure function of the case, so a portfolio
campaign keeps the engine's determinism contract: the journal written
by a serial run is byte-identical to the supervised-fleet run, the
spawn-pool run differs only in completion order and worker ids, and
all paths aggregate identically.  ``seconds`` fields are wall-clock
measurements, so the task wrapper canonicalises them to zero before
journaling — every remaining byte (including the journaled winner)
must match.
"""

import json
import os
import tempfile

from repro.experiments.export import rows_to_csv, rows_to_json
from repro.experiments.runner import ExperimentConfig
from repro.jobs.engine import run_campaign
from repro.jobs.spec import enumerate_cases
from repro.jobs.worker import execute_case

CONFIG = ExperimentConfig(selections=1, errors=2, patterns=50,
                          benchmarks=["comp"], strategy="portfolio")


def canon_task(case):
    """execute_case with wall-clock fields zeroed (module-level so the
    spawn pool can pickle it)."""
    record = execute_case(case)
    record.seconds = 0.0
    for outcome in record.checks.values():
        outcome.seconds = 0.0
    return record


def _run(**kwargs):
    with tempfile.TemporaryDirectory() as td:
        journal = os.path.join(td, "journal.jsonl")
        result = run_campaign(CONFIG, task=canon_task, journal=journal,
                              **kwargs)
        with open(journal) as handle:
            raw = handle.read()
    rows = [result.rows[name] for name in result.rows]
    return raw, rows_to_json(rows), rows_to_csv(rows)


def _canonical_lines(raw):
    """Journal lines modulo completion order and worker id."""
    lines = []
    for line in raw.splitlines():
        doc = json.loads(line)
        doc.pop("worker", None)
        lines.append(json.dumps(doc, sort_keys=True))
    return sorted(lines)


class TestPortfolioDeterminism:
    def test_strategy_recorded_in_case_spec(self):
        cases = enumerate_cases(CONFIG)
        assert all(c.strategy == "portfolio" for c in cases)
        assert all(c.to_dict()["strategy"] == "portfolio"
                   for c in cases)

    def test_serial_jobs_and_shards_agree(self):
        serial = _run()
        jobs2 = _run(jobs=2)
        shards = _run(shards=2)
        # The fleet merges records in canonical order: byte-identical.
        assert shards[0] == serial[0]
        # The spawn pool journals in completion order with worker ids;
        # everything else — including the journaled winner — matches.
        assert _canonical_lines(jobs2[0]) == _canonical_lines(serial[0])
        # All paths aggregate identically.
        assert serial[1] == jobs2[1] == shards[1]
        assert serial[2] == jobs2[2] == shards[2]

    def test_winner_journaled_per_raced_check(self):
        raw, _, _ = _run()
        for line in raw.splitlines():
            doc = json.loads(line)
            for check in ("0,1,X", "oe"):
                assert doc["checks"][check]["engine"] in ("sat", "bdd")
            for check in ("r.p.", "loc.", "ie"):
                assert "engine" not in doc["checks"][check]

    def test_default_strategy_journal_bytes_unchanged(self):
        """A strategy-free campaign must not gain any new keys."""
        config = ExperimentConfig(selections=1, errors=1, patterns=50,
                                  benchmarks=["comp"])
        with tempfile.TemporaryDirectory() as td:
            journal = os.path.join(td, "journal.jsonl")
            run_campaign(config, task=canon_task, journal=journal)
            with open(journal) as handle:
                doc = json.loads(handle.read().splitlines()[0])
        assert "strategy" not in doc["case"]
        assert not any("engine" in slice_
                       for slice_ in doc["checks"].values())
