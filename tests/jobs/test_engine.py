"""End-to-end campaign engine tests: determinism, resume, timeouts.

The real-execution tests run a deliberately tiny campaign (alu4, a
handful of cases) so they stay in the seconds range even on one core.
"""

import os

import pytest

from repro.core.result import OUTCOME_OK, OUTCOME_TIMEOUT
from repro.experiments.runner import CHECKS, ExperimentConfig
from repro.jobs import (enumerate_cases, execute_case, read_journal,
                        run_campaign)

from .test_pool import hang_task, stub_task

CONFIG = ExperimentConfig(selections=1, errors=3, patterns=30,
                          benchmarks=["alu4"])


def deterministic_fields(row):
    """Everything in a row except the wall-clock measurements."""
    return (row.circuit, row.inputs, row.outputs, row.spec_nodes,
            row.cases, row.detected, row.impl_nodes, row.peak_nodes,
            row.valid, row.timeouts, row.check_errors)


class TestDeterminism:
    def test_serial_and_parallel_aggregate_identically(self):
        serial = run_campaign(CONFIG)
        parallel = run_campaign(CONFIG, jobs=2)
        assert serial.executed == parallel.executed == 3
        assert deterministic_fields(serial.rows["alu4"]) \
            == deterministic_fields(parallel.rows["alu4"])
        for ours, theirs in zip(serial.records, parallel.records):
            assert ours.case == theirs.case
            assert ours.outcome == theirs.outcome == OUTCOME_OK
            assert ours.mutation == theirs.mutation
            for check in CHECKS:
                assert ours.checks[check].error_found \
                    == theirs.checks[check].error_found
                assert ours.checks[check].peak_nodes \
                    == theirs.checks[check].peak_nodes

    def test_single_case_matches_campaign(self):
        # Sharding/resume soundness: a case executed on its own yields
        # the same record as inside the full campaign.
        campaign = run_campaign(CONFIG)
        case = enumerate_cases(CONFIG)[2]
        alone = execute_case(case)
        twin = next(r for r in campaign.records if r.case == case)
        assert alone.mutation == twin.mutation
        for check in CHECKS:
            assert alone.checks[check].error_found \
                == twin.checks[check].error_found
            assert alone.checks[check].impl_nodes \
                == twin.checks[check].impl_nodes


class TestResume:
    def test_resume_from_truncated_journal(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        full = run_campaign(CONFIG, journal=path)
        with open(path) as handle:
            lines = handle.readlines()
        assert len(lines) == 3
        # Simulate a crash: keep one complete record plus a torn line.
        with open(path, "w") as handle:
            handle.write(lines[0])
            handle.write(lines[1][:50])
        resumed = run_campaign(CONFIG, resume=path)
        assert resumed.resumed == 1
        assert resumed.executed == 2
        assert deterministic_fields(resumed.rows["alu4"]) \
            == deterministic_fields(full.rows["alu4"])
        # The journal is whole again and replays to the full campaign.
        assert len(read_journal(path)) == 3

    def test_resume_complete_journal_executes_nothing(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        run_campaign(CONFIG, journal=path, jobs=2)
        again = run_campaign(CONFIG, resume=path)
        assert again.resumed == 3
        assert again.executed == 0

    def test_resume_into_fresh_journal_is_self_contained(self, tmp_path):
        old = str(tmp_path / "old.jsonl")
        new = str(tmp_path / "new.jsonl")
        run_campaign(CONFIG, journal=old)
        result = run_campaign(CONFIG, resume=old, journal=new)
        assert result.resumed == 3
        assert len(read_journal(new)) == 3

    def test_resume_ignores_foreign_records(self, tmp_path):
        # A journal from a different campaign (other seed) must not
        # satisfy this campaign's cases.
        path = str(tmp_path / "campaign.jsonl")
        other = ExperimentConfig(selections=1, errors=3, patterns=30,
                                 seed=7, benchmarks=["alu4"])
        run_campaign(other, journal=path, task=stub_task)
        result = run_campaign(CONFIG, resume=path, task=stub_task)
        assert result.resumed == 0
        assert result.executed == 3


class TestTimeouts:
    def test_timeout_recorded_and_excluded_from_denominators(self):
        # hang_task sleeps on error_index 0, stubs the rest; the stub
        # "detects" only even error indices, so with index 0 timed out
        # the survivors are index 1 (missed) and index 2 (detected).
        result = run_campaign(CONFIG, jobs=2, timeout=1.0,
                              task=hang_task)
        row = result.rows["alu4"]
        assert result.timeouts == len(CHECKS)
        by_index = {r.case.error_index: r for r in result.records}
        assert by_index[0].outcome == OUTCOME_TIMEOUT
        for check in CHECKS:
            assert row.timeouts[check] == 1
            assert row.valid[check] == 2
            assert row.detection_ratio(check) == pytest.approx(50.0)
