"""Tests for the spawn worker pool: timeouts, crashes, retries.

The task callables live at module level so spawned children can import
them by reference; they are stubs (no BDD work), so these tests measure
pool mechanics, not check runtimes.
"""

import os
import time

from repro.core.result import OUTCOME_ERROR, OUTCOME_OK, OUTCOME_TIMEOUT
from repro.jobs import (CaseRecord, CaseSpec, CheckOutcome,
                        run_parallel)

CHECKS = ("r.p.", "ie")


def make_cases(count):
    return [CaseSpec(benchmark="alu4", selection=0, error_index=i,
                     fraction=0.1, num_boxes=1, patterns=10, seed=5,
                     checks=CHECKS) for i in range(count)]


def stub_task(case):
    """Deterministic fake result, no real checking."""
    return CaseRecord(
        case=case, outcome=OUTCOME_OK, seconds=0.001,
        inputs=2, outputs=1, spec_nodes=3,
        mutation="stub",
        checks={c: CheckOutcome(error_found=case.error_index % 2 == 0)
                for c in case.checks})


def hang_task(case):
    """Simulates a runaway exact check on the first case."""
    if case.error_index == 0:
        time.sleep(300)
    return stub_task(case)


def crash_task(case):
    """Simulates a segfaulting/OOM-killed worker on the first case."""
    if case.error_index == 0:
        os._exit(3)
    return stub_task(case)


def sleep_task(case):
    """Fixed-length nap; sleeps need no CPU, so overlap is provable
    even on a single-core runner."""
    time.sleep(1.0)
    return stub_task(case)


class TestRunParallel:
    def test_empty_case_list(self):
        assert run_parallel([], jobs=2, task=stub_task) == []

    def test_all_cases_complete_once(self):
        cases = make_cases(6)
        seen = []
        records = run_parallel(cases, jobs=2, task=stub_task,
                               on_record=seen.append)
        assert len(records) == 6
        assert len(seen) == 6
        assert sorted(r.case.error_index for r in records) \
            == list(range(6))
        assert all(r.outcome == OUTCOME_OK for r in records)
        assert {r.worker for r in records} <= {0, 1}

    def test_hung_task_killed_at_timeout(self):
        cases = make_cases(3)
        start = time.monotonic()
        records = run_parallel(cases, jobs=2, timeout=1.5,
                               task=hang_task)
        elapsed = time.monotonic() - start
        by_index = {r.case.error_index: r for r in records}
        assert by_index[0].outcome == OUTCOME_TIMEOUT
        assert all(c.outcome == OUTCOME_TIMEOUT
                   for c in by_index[0].checks.values())
        assert by_index[1].outcome == OUTCOME_OK
        assert by_index[2].outcome == OUTCOME_OK
        # killed close to the deadline, not after the full 300s sleep
        assert by_index[0].seconds >= 1.4
        assert elapsed < 60

    def test_two_workers_overlap(self):
        # 4 one-second naps serially take >= 4s; two workers finish in
        # ~2s plus spawn overhead.  The 3.8s bound holds even when the
        # runner has a single core, because sleeping burns no CPU.
        cases = make_cases(4)
        start = time.monotonic()
        records = run_parallel(cases, jobs=2, task=sleep_task)
        elapsed = time.monotonic() - start
        assert len(records) == 4
        assert elapsed < 3.8

    def test_crashed_worker_retried_then_error(self):
        cases = make_cases(3)
        records = run_parallel(cases, jobs=2, task=crash_task,
                               max_attempts=2)
        by_index = {r.case.error_index: r for r in records}
        assert by_index[0].outcome == OUTCOME_ERROR
        assert by_index[0].attempt == 2
        assert "worker died" in by_index[0].checks["ie"].detail
        # the crashing case must not take the rest of the pool down
        assert by_index[1].outcome == OUTCOME_OK
        assert by_index[2].outcome == OUTCOME_OK
