"""Tests for the JSONL checkpoint journal."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import OUTCOME_ERROR, OUTCOME_OK, OUTCOME_TIMEOUT
from repro.jobs import (CaseRecord, CaseSpec, CheckOutcome,
                        JournalWriter, failed_record, read_journal,
                        timeout_record)

CHECKS = ("r.p.", "0,1,X", "ie")


def make_case(error_index=0, seed=2001):
    return CaseSpec(benchmark="alu4", selection=0,
                    error_index=error_index, fraction=0.1, num_boxes=1,
                    patterns=100, seed=seed, checks=CHECKS)


def make_record(error_index=0, seed=2001):
    case = make_case(error_index, seed)
    return CaseRecord(
        case=case, outcome=OUTCOME_OK, seconds=1.25, worker=1,
        attempt=1, inputs=14, outputs=8, spec_nodes=324,
        mutation="invert_output at gate 'n1'",
        checks={c: CheckOutcome(outcome=OUTCOME_OK, error_found=True,
                                seconds=0.1, impl_nodes=10,
                                peak_nodes=20) for c in CHECKS})


class TestRoundTrip:
    def test_writer_reader(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        records = [make_record(i) for i in range(3)]
        with JournalWriter(path) as writer:
            for record in records:
                writer.write(record)
        assert read_journal(path) == records

    def test_line_is_single_line(self):
        assert "\n" not in make_record().to_json_line()

    def test_terminal_record_helpers(self):
        case = make_case()
        failed = failed_record(case, ValueError("boom"), seconds=0.5)
        assert failed.outcome == OUTCOME_ERROR
        assert set(failed.checks) == set(CHECKS)
        assert "boom" in failed.checks["ie"].detail
        timed = timeout_record(case, 12.0, worker=3)
        assert timed.outcome == OUTCOME_TIMEOUT
        assert all(c.outcome == OUTCOME_TIMEOUT
                   for c in timed.checks.values())
        # both must survive the journal
        assert CaseRecord.from_json_line(failed.to_json_line()) == failed
        assert CaseRecord.from_json_line(timed.to_json_line()) == timed


class TestCrashTolerance:
    def test_truncated_tail_skipped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JournalWriter(path) as writer:
            writer.write(make_record(0))
            writer.write(make_record(1))
        with open(path) as handle:
            lines = handle.readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:1])
            handle.write(lines[1][:37])  # torn mid-record write
        survivors = read_journal(path)
        assert [r.case.error_index for r in survivors] == [0]

    def test_append_after_torn_tail_self_heals(self, tmp_path):
        # Without healing, the appended record would concatenate onto
        # the torn line and *both* would be lost.
        path = str(tmp_path / "journal.jsonl")
        with JournalWriter(path) as writer:
            writer.write(make_record(0))
            writer.write(make_record(1))
        with open(path) as handle:
            content = handle.read()
        with open(path, "w") as handle:
            handle.write(content[:-40])
        with JournalWriter(path) as writer:
            writer.write(make_record(2))
        assert sorted(r.case.error_index for r in read_journal(path)) \
            == [0, 2]

    def test_garbage_lines_skipped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w") as handle:
            handle.write("not json at all\n")
            handle.write('{"v": 99, "case": {}}\n')
            handle.write(make_record(4).to_json_line() + "\n")
            handle.write("\n")
        assert [r.case.error_index for r in read_journal(path)] == [4]

    def test_duplicate_keys_last_wins(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        first = make_record(0)
        second = make_record(0)
        second.seconds = 99.0
        with JournalWriter(path) as writer:
            writer.write(first)
            writer.write(make_record(1))
            writer.write(second)
        records = read_journal(path)
        assert len(records) == 2
        assert records[0].seconds == 99.0


_outcomes = st.sampled_from([OUTCOME_OK, OUTCOME_TIMEOUT, OUTCOME_ERROR])
_names = st.text(min_size=1, max_size=20)
_floats = st.floats(min_value=0, max_value=1e6, allow_nan=False)
_check_outcomes = st.builds(
    CheckOutcome, outcome=_outcomes, error_found=st.booleans(),
    seconds=_floats, impl_nodes=st.integers(0, 10 ** 9),
    peak_nodes=st.integers(0, 10 ** 9), detail=st.text(max_size=40))
_cases = st.builds(
    CaseSpec, benchmark=_names, selection=st.integers(0, 99),
    error_index=st.integers(0, 999),
    fraction=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    num_boxes=st.integers(1, 9), patterns=st.integers(1, 10 ** 5),
    seed=st.integers(0, 2 ** 63 - 1),
    checks=st.lists(_names, min_size=1, max_size=5).map(tuple))
_records = st.builds(
    CaseRecord, case=_cases, outcome=_outcomes,
    checks=st.dictionaries(_names, _check_outcomes, max_size=5),
    seconds=_floats, worker=st.integers(0, 63),
    attempt=st.integers(1, 5), inputs=st.integers(0, 10 ** 4),
    outputs=st.integers(0, 10 ** 4), spec_nodes=st.integers(0, 10 ** 9),
    mutation=st.text(max_size=60))


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(record=_records)
    def test_record_roundtrips_through_json_line(self, record):
        line = record.to_json_line()
        assert "\n" not in line
        assert CaseRecord.from_json_line(line) == record
