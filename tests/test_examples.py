"""Every shipped example must run to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath(
        "examples").glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    proc = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True,
        timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()
