"""Documentation sanity: what the docs mention must actually exist."""

import importlib
import pathlib
import re
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
        path = ROOT / name
        assert path.exists(), name
        assert path.stat().st_size > 200, name


def test_readme_modules_importable():
    text = (ROOT / "README.md").read_text()
    modules = set(re.findall(r"`(repro(?:\.[a-z_]+)+)`", text))
    assert modules, "README should reference repro modules"
    for module in modules:
        importlib.import_module(module)


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    scripts = set(re.findall(r"`([a-z_]+\.py)`", text))
    examples = {p.name for p in (ROOT / "examples").glob("*.py")}
    missing = {s for s in scripts if s not in examples
               and not (ROOT / s).exists()}
    assert not missing, missing


def test_design_mentions_every_subpackage():
    text = (ROOT / "DESIGN.md").read_text()
    for sub in ("bdd", "circuit", "generators", "sim", "partial",
                "core", "sat", "seq", "experiments"):
        assert sub in text, sub


def test_cli_commands_in_docs_are_valid():
    from repro.experiments.cli import main

    text = (ROOT / "README.md").read_text() \
        + (ROOT / "EXPERIMENTS.md").read_text()
    commands = set(re.findall(
        r"python -m repro\.experiments ([a-z0-9|]+)", text))
    flattened = set()
    for c in commands:
        flattened.update(c.split("|"))
    known = {"table1", "table2", "table40", "figures", "sweep", "lint"}
    assert flattened <= known, flattened - known


def test_module_docstrings_everywhere():
    missing = []
    for path in (ROOT / "src").rglob("*.py"):
        source = path.read_text().lstrip()
        if not source:
            continue
        if not source.startswith(('"""', "'''", '#')):
            missing.append(str(path))
    assert not missing, missing
