"""Documentation sanity: what the docs mention must actually exist."""

import importlib
import pathlib
import re
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
        path = ROOT / name
        assert path.exists(), name
        assert path.stat().st_size > 200, name


def test_readme_modules_importable():
    text = (ROOT / "README.md").read_text()
    modules = set(re.findall(r"`(repro(?:\.[a-z_]+)+)`", text))
    assert modules, "README should reference repro modules"
    for module in modules:
        importlib.import_module(module)


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    scripts = set(re.findall(r"`([a-z_]+\.py)`", text))
    examples = {p.name for p in (ROOT / "examples").glob("*.py")}
    missing = {s for s in scripts if s not in examples
               and not (ROOT / s).exists()}
    assert not missing, missing


def test_design_mentions_every_subpackage():
    text = (ROOT / "DESIGN.md").read_text()
    for sub in ("bdd", "circuit", "generators", "sim", "partial",
                "core", "sat", "seq", "experiments"):
        assert sub in text, sub


def test_cli_commands_in_docs_are_valid():
    from repro.experiments.cli import main

    text = (ROOT / "README.md").read_text() \
        + (ROOT / "EXPERIMENTS.md").read_text()
    commands = set(re.findall(
        r"python -m repro\.experiments ([a-z0-9|]+)", text))
    flattened = set()
    for c in commands:
        flattened.update(c.split("|"))
    known = {"table1", "table2", "table40", "figures", "sweep", "lint",
             "trace", "cache"}
    assert flattened <= known, flattened - known


def _python_blocks(path):
    """``(start_line, source)`` for every ```python block in ``path``."""
    blocks = []
    lines = path.read_text().splitlines()
    inside, start, chunk = False, 0, []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not inside and stripped == "```python":
            inside, start, chunk = True, number + 1, []
        elif inside and stripped == "```":
            inside = False
            blocks.append((start, "\n".join(chunk)))
        elif inside:
            chunk.append(line)
    assert not inside, "unterminated ```python block in %s" % path.name
    return blocks


DOC_FILES = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_every_python_block_in_docs_executes(doc, tmp_path, monkeypatch):
    """Every ```python fence in the docs is a runnable program.

    Blocks within one document share a namespace (later blocks may
    build on earlier ones, as prose naturally does) and run inside a
    scratch directory so snippets may write files.
    """
    blocks = _python_blocks(doc)
    if not blocks:
        pytest.skip("no python blocks in %s" % doc.name)
    monkeypatch.chdir(tmp_path)
    namespace = {"__name__": "__doc_snippet__"}
    for start, source in blocks:
        code = compile(source, "%s:%d" % (doc.name, start), "exec")
        exec(code, namespace)


LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_in_docs_resolve(doc):
    dead = []
    for target in LINK.findall(doc.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue  # pure in-page anchor
        if not (doc.parent / relative).exists():
            dead.append(target)
    assert not dead, "dead links in %s: %s" % (doc.name, dead)


def test_module_docstrings_everywhere():
    missing = []
    for path in (ROOT / "src").rglob("*.py"):
        source = path.read_text().lstrip()
        if not source:
            continue
        if not source.startswith(('"""', "'''", '#')):
            missing.append(str(path))
    assert not missing, missing
