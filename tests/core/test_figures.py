"""The paper's worked examples: each check separates at the right rung.

Reproduces the behaviour of Figures 1, 2(a), 2(b), 3(a), 3(b).
"""

import pytest

from repro.core import (check_input_exact, check_local,
                        check_output_exact, check_random_patterns,
                        check_symbolic_01x, is_extendable, run_ladder)
from repro.generators import (ALL_FIGURES, figure1, figure2a, figure2b,
                              figure3a, figure3b)

SYMBOLIC_ORDER = ["symbolic_01x", "local", "output_exact", "input_exact"]
CHECKERS = {
    "symbolic_01x": check_symbolic_01x,
    "local": check_local,
    "output_exact": check_output_exact,
    "input_exact": check_input_exact,
}


@pytest.mark.parametrize("name", list(ALL_FIGURES))
def test_separation_matrix(name):
    factory, expected_first = ALL_FIGURES[name]
    spec, partial = factory()
    first_detect = None
    for check_name in SYMBOLIC_ORDER:
        result = CHECKERS[check_name](spec, partial)
        if result.error_found and first_detect is None:
            first_detect = check_name
        if expected_first is not None:
            index = SYMBOLIC_ORDER.index(check_name)
            should_find = index >= SYMBOLIC_ORDER.index(expected_first)
            assert result.error_found == should_find, \
                "%s on %s" % (check_name, name)
        else:
            assert not result.error_found, (name, check_name)
    assert first_detect == expected_first


@pytest.mark.parametrize("name", list(ALL_FIGURES))
def test_oracle_agrees_with_exact_verdict(name):
    """Ground truth: the figures marked erroneous really have no
    extension; figure1 really has one (brute force over box tables)."""
    factory, expected_first = ALL_FIGURES[name]
    spec, partial = factory()
    extendable = is_extendable(spec, partial, limit=1 << 18)
    assert extendable == (expected_first is None)


def test_figure1_extendable_and_exact():
    spec, partial = figure1()
    result = check_input_exact(spec, partial)
    assert not result.error_found
    # two boxes: the verdict is not certified exact
    assert not result.exact


def test_figure2a_counterexample_is_real():
    spec, partial = figure2a()
    result = check_symbolic_01x(spec, partial)
    assert result.error_found
    cex = result.counterexample
    assert cex is not None
    # the cex must force a definite wrong value: check via the scalar sim
    from repro.core.random_pattern import ternary_distinguishes

    assert ternary_distinguishes(spec, partial, cex) is not None


def test_figure2b_local_counterexample():
    spec, partial = figure2b()
    result = check_local(spec, partial)
    assert result.error_found
    assert result.failing_output == "f1"
    cex = result.counterexample
    # x4=x5=1 with x2&x3=0 is the only family of witnesses
    assert cex["x4"] and cex["x5"]
    assert not (cex["x2"] and cex["x3"])


def test_figure3a_output_exact_counterexample():
    spec, partial = figure3a()
    result = check_output_exact(spec, partial)
    assert result.error_found
    assert result.counterexample is not None


def test_figure3b_error_has_no_input_witness():
    spec, partial = figure3b()
    result = check_input_exact(spec, partial)
    assert result.error_found
    assert result.exact          # single box: verdict is definitive
    # no single input vector proves the error (paper's point)
    assert result.counterexample is None
    assert "input cones" in result.detail


def test_ladder_stops_at_first_detection():
    spec, partial = figure2b()
    results = run_ladder(spec, partial, patterns=50, seed=0)
    assert results[-1].error_found
    assert results[-1].check == "local"
    assert all(not r.error_found for r in results[:-1])
