"""Tests for witness Black Box synthesis."""

import random

import pytest

from repro.bdd import Bdd
from repro.circuit import CircuitBuilder, CircuitError
from repro.core import (bdd_to_net, check_equivalence, determinize,
                        function_vector_circuit, synthesize_boxes,
                        synthesize_single_box)
from repro.generators import alu4_like, comp_like, figure1, figure2b, \
    figure3b
from repro.partial import make_partial


class TestBddToNet:
    def test_roundtrip_random_functions(self):
        bdd = Bdd()
        names = ["p", "q", "r"]
        bdd.add_vars(names)
        p, q, r = (bdd.var(n) for n in names)
        f = (p & q) | (~p & r)
        builder = CircuitBuilder("syn")
        nets = {n: builder.input(n) for n in names}
        root = bdd_to_net(builder, f, nets)
        builder.circuit.add_output(root)
        circuit = builder.build()
        for bits in range(8):
            asg = {"p": bool(bits & 1), "q": bool(bits & 2),
                   "r": bool(bits & 4)}
            assert circuit.evaluate(asg)[root] == f.evaluate(asg)

    def test_unmapped_variable_rejected(self):
        bdd = Bdd()
        bdd.add_vars(["p"])
        builder = CircuitBuilder()
        with pytest.raises(CircuitError):
            bdd_to_net(builder, bdd.var("p"), {})

    def test_constants(self):
        bdd = Bdd()
        builder = CircuitBuilder()
        builder.input("dummy")
        top = bdd_to_net(builder, bdd.true, {})
        bot = bdd_to_net(builder, bdd.false, {})
        values = builder.circuit.evaluate({"dummy": False},
                                          all_nets=True)
        assert values[top] and not values[bot]


class TestDeterminize:
    def test_total_relation(self):
        bdd = Bdd()
        bdd.add_vars(["i", "o"])
        i, o = bdd.var("i"), bdd.var("o")
        relation = o.equiv(~i)
        fns = determinize(relation, ["o"])
        assert fns is not None
        assert fns[0] == ~i

    def test_partial_relation_returns_none(self):
        bdd = Bdd()
        bdd.add_vars(["i", "o"])
        i, o = bdd.var("i"), bdd.var("o")
        relation = i & o          # no legal o when i = 0
        assert determinize(relation, ["o"]) is None

    def test_choice_freedom_prefers_zero(self):
        bdd = Bdd()
        bdd.add_vars(["i", "o"])
        relation = bdd.true       # anything goes
        fns = determinize(relation, ["o"])
        assert fns[0].is_false

    def test_multi_output(self):
        bdd = Bdd()
        bdd.add_vars(["i", "o1", "o2"])
        i, o1, o2 = (bdd.var(n) for n in ("i", "o1", "o2"))
        relation = (o1 ^ o2).equiv(i)   # outputs must differ iff i
        fns = determinize(relation, ["o1", "o2"])
        assert fns is not None
        for iv in (False, True):
            v1 = fns[0].evaluate({"i": iv})
            v2 = fns[1].evaluate({"i": iv})
            assert (v1 != v2) == iv


class TestFunctionVectorCircuit:
    def test_interface(self):
        bdd = Bdd()
        bdd.add_vars(["a", "b"])
        f = bdd.var("a") ^ bdd.var("b")
        circuit = function_vector_circuit([f, ~f], ["a", "b"])
        assert circuit.inputs == ["i0", "i1"]
        assert circuit.outputs == ["o0", "o1"]
        out = circuit.evaluate({"i0": True, "i1": False})
        assert out == {"o0": True, "o1": False}


class TestSynthesizeBoxes:
    def test_figure1_witness_verifies(self):
        spec, partial = figure1()
        implementations = synthesize_boxes(spec, partial)
        assert implementations is not None
        complete = partial.substitute(implementations)
        assert check_equivalence(spec, complete).equivalent

    def test_erroneous_partial_yields_none(self):
        spec, partial = figure2b()
        assert synthesize_boxes(spec, partial) is None
        spec, partial = figure3b()
        assert synthesize_single_box(spec, partial) is None

    def test_single_box_api_guard(self):
        spec, partial = figure1()
        with pytest.raises(CircuitError):
            synthesize_single_box(spec, partial)  # two boxes

    @pytest.mark.parametrize("factory,seed", [
        (alu4_like, 2), (alu4_like, 13), (comp_like, 5)])
    def test_carved_single_box_synthesis(self, factory, seed):
        """End-to-end: carve a box out of a benchmark, synthesize a
        fresh implementation, plug it back, prove equivalence."""
        spec = factory()
        partial = make_partial(spec, fraction=0.08, num_boxes=1,
                               seed=seed)
        witness = synthesize_single_box(spec, partial)
        assert witness is not None
        complete = partial.substitute(
            {partial.boxes[0].name: witness})
        assert check_equivalence(spec, complete).equivalent

    def test_multi_box_carve_synthesis(self):
        spec = alu4_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=2, seed=6)
        implementations = synthesize_boxes(spec, partial)
        # greedy multi-box synthesis may fail in principle, but on a
        # clean carve with verification it must either give a correct
        # result or None — never a wrong one (verify=True guarantees).
        if implementations is not None:
            complete = partial.substitute(implementations)
            assert check_equivalence(spec, complete).equivalent
