"""Tests for input exact failure explanation."""

import pytest

from repro.core import (check_input_exact, check_output_exact,
                        explain_input_exact_failure, prepare_context)
from repro.generators import figure1, figure2b, figure3b


class TestExplainFigure3b:
    def test_scenario_matches_paper_argument(self):
        spec, partial = figure3b()
        ctx = prepare_context(spec, partial)
        scenario = explain_input_exact_failure(ctx)
        assert scenario is not None
        assert scenario.box == "BB1"
        assert set(scenario.pin_values) == {"x6", "x7"}
        # both possible single-bit outputs are refuted
        assert set(scenario.refutations) == {(False,), (True,)}

    def test_refutations_are_concrete(self):
        spec, partial = figure3b()
        ctx = prepare_context(spec, partial)
        scenario = explain_input_exact_failure(ctx)
        box = partial.boxes[0]
        for bits, vector in scenario.refutations.items():
            # the vector is consistent with the observation...
            values = spec.evaluate(vector, all_nets=True)
            for net, want in scenario.pin_values.items():
                assert values[net] == want
            # ...and that output choice produces a wrong primary output
            impl_out = partial.circuit.evaluate(
                {**vector, **dict(zip(box.outputs, bits))})
            spec_out = spec.evaluate(vector)
            assert [impl_out[n] for n in partial.circuit.outputs] \
                != [spec_out[n] for n in spec.outputs]

    def test_refutation_vectors_differ_only_behind_the_box(self):
        """The two x vectors agree on the box's pins — the conflict is
        invisible to the box, which is the whole point."""
        spec, partial = figure3b()
        ctx = prepare_context(spec, partial)
        scenario = explain_input_exact_failure(ctx)
        vectors = list(scenario.refutations.values())
        for net, want in scenario.pin_values.items():
            for vector in vectors:
                values = spec.evaluate(vector, all_nets=True)
                assert values[net] == want

    def test_describe(self):
        spec, partial = figure3b()
        ctx = prepare_context(spec, partial)
        text = explain_input_exact_failure(ctx).describe()
        assert "BB1" in text and "wrong for primary inputs" in text


class TestExplainLimits:
    def test_none_for_passing_design(self):
        spec, partial = figure1()
        # figure1 has two boxes -> None regardless
        ctx = prepare_context(spec, partial)
        assert explain_input_exact_failure(ctx) is None

    def test_none_when_check_passes_single_box(self):
        from repro.generators import alu4_like
        from repro.partial import make_partial

        spec = alu4_like()
        partial = make_partial(spec, fraction=0.08, num_boxes=1, seed=2)
        ctx = prepare_context(spec, partial)
        assert not check_input_exact(spec, partial).error_found
        assert explain_input_exact_failure(ctx) is None

    def test_scenario_exists_even_with_pi_counterexample(self):
        """figure2b fails even the local check; a single-box failure
        always yields an unwinnable observation too."""
        spec, partial = figure2b()
        ctx = prepare_context(spec, partial)
        scenario = explain_input_exact_failure(ctx)
        assert scenario is not None
        assert scenario.refutations
