"""Tests for the CheckResult container and Stopwatch."""

import time

from repro.core import CheckResult
from repro.core.result import Stopwatch


class TestCheckResult:
    def test_repr_variants(self):
        err = CheckResult(check="local", error_found=True,
                          failing_output="f1")
        assert "ERROR" in repr(err)
        assert "f1" in repr(err)
        ok_exact = CheckResult(check="input_exact", error_found=False,
                               exact=True)
        assert "exact" in repr(ok_exact)
        ok = CheckResult(check="local", error_found=False)
        assert "no error" in repr(ok)

    def test_defaults(self):
        result = CheckResult(check="x", error_found=False)
        assert result.counterexample is None
        assert result.stats == {}
        assert result.seconds == 0.0


class TestStopwatch:
    def test_measures_elapsed_time(self):
        with Stopwatch() as clock:
            time.sleep(0.01)
        assert clock.seconds >= 0.009

    def test_reusable(self):
        clock = Stopwatch()
        with clock:
            pass
        first = clock.seconds
        with clock:
            time.sleep(0.005)
        assert clock.seconds >= 0.004
        assert clock.seconds != first or first == 0.0
