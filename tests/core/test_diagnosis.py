"""Tests for error-location verification and single-fault diagnosis."""

import random

import pytest

from repro.circuit import CircuitBuilder, CircuitError
from repro.core import (check_equivalence, locate_single_error,
                        verify_error_location)
from repro.generators import alu4_like
from repro.partial import Mutation, apply_mutation, insert_random_error


def real_mutant(spec, seed, keep_wiring=False):
    """A mutation that actually changes the function.

    With ``keep_wiring`` only function-changing mutations are used:
    a ``remove_input`` fault deletes a wire, after which no replacement
    of the faulty gate alone can restore the lost dependency — correct
    model behaviour, but not what gate-level diagnosis tests expect.
    """
    rng = random.Random(seed)
    while True:
        impl, mutation = insert_random_error(spec, rng)
        if keep_wiring and mutation.kind == "remove_input":
            continue
        if not check_equivalence(spec, impl).equivalent:
            return impl, mutation


class TestVerifyErrorLocation:
    def test_true_site_is_confined_and_proven(self):
        spec = alu4_like()
        impl, mutation = real_mutant(spec, 3)
        diagnosis = verify_error_location(spec, impl, [mutation.gate])
        assert diagnosis.confined
        assert diagnosis.exact
        assert mutation.gate in diagnosis.boxed_gates

    def test_unrelated_site_is_refuted(self):
        spec = alu4_like()
        impl, mutation = real_mutant(spec, 3)
        unrelated = next(
            g.output for g in impl.gates
            if g.output != mutation.gate
            and mutation.gate not in impl.cone([g.output])
            and g.output not in impl.cone([mutation.gate]))
        diagnosis = verify_error_location(spec, impl, [unrelated])
        assert not diagnosis.confined
        assert diagnosis.check_result.error_found

    def test_region_containing_site_is_confined(self):
        spec = alu4_like()
        impl, mutation = real_mutant(spec, 5)
        fanout = impl.fanout_map()
        region = {mutation.gate}
        region.update(fanout.get(mutation.gate, [])[:2])
        region = {net for net in region if impl.drives(net)}
        diagnosis = verify_error_location(spec, impl, region)
        assert diagnosis.confined

    def test_empty_suspects_rejected(self):
        spec = alu4_like()
        with pytest.raises(CircuitError):
            verify_error_location(spec, spec.copy(), [])

    def test_unknown_gate_rejected(self):
        spec = alu4_like()
        with pytest.raises(CircuitError):
            verify_error_location(spec, spec.copy(), ["ghost"])

    def test_output_exact_mode(self):
        spec = alu4_like()
        impl, mutation = real_mutant(spec, 7)
        diagnosis = verify_error_location(spec, impl, [mutation.gate],
                                          use_input_exact=False)
        # output exact is approximate: "confined" may be unproven,
        # but a confined verdict never carries the exactness flag here
        # (multiple PIs are not box inputs).
        assert not diagnosis.exact or diagnosis.confined


class TestLocateSingleError:
    def test_true_site_among_candidates(self):
        spec = alu4_like()
        impl, mutation = real_mutant(spec, 11, keep_wiring=True)
        sites = locate_single_error(spec, impl)
        assert mutation.gate in sites
        # every reported site must itself verify as confined
        for site in sites:
            assert verify_error_location(spec, impl, [site]).confined

    def test_clean_circuit_every_gate_confines(self):
        """No error anywhere: boxing any single gate trivially leaves a
        repairable design (restore the original gate)."""
        builder = CircuitBuilder("tiny")
        a, b = builder.input("a"), builder.input("b")
        t = builder.and_(a, b, out="t")
        builder.output(builder.or_(t, a, out="f"), "f")
        spec = builder.build()
        sites = locate_single_error(spec, spec.copy())
        assert set(sites) == {"t", "f"}

    def test_candidate_subset(self):
        spec = alu4_like()
        impl, mutation = real_mutant(spec, 13, keep_wiring=True)
        sites = locate_single_error(spec, impl,
                                    candidates=[mutation.gate])
        assert sites == [mutation.gate]

    def test_wire_removal_fault_not_repairable_at_gate(self):
        """A remove_input fault severs a wire; replacing the gate's
        function cannot restore the lost dependency (documented model
        behaviour)."""
        builder = CircuitBuilder("spec")
        a, b = builder.input("a"), builder.input("b")
        builder.output(builder.and_(a, b, out="g"), "g")
        spec = builder.build()
        impl = apply_mutation(spec, Mutation("remove_input", "g",
                                             pin=1))
        assert not check_equivalence(spec, impl).equivalent
        diagnosis = verify_error_location(spec, impl, ["g"])
        assert not diagnosis.confined
