"""The detection-power hierarchy of the five checks (paper Section 2).

For any spec + partial implementation:

    r.p. ⟹ 0,1,X ⟹ local ⟹ output exact ⟹ input exact

and no check may flag a partial implementation that is extendable
(soundness).  Verified on mutation campaigns over carved benchmark
circuits and on random circuits with tiny boxes against the brute-force
oracle.
"""

import random

import pytest

from repro.circuit import CircuitBuilder, GateType
from repro.core import (check_input_exact, check_local,
                        check_output_exact, check_random_patterns,
                        check_symbolic_01x, is_extendable)
from repro.generators import alu4_like, comp_like, term1_like
from repro.partial import (BlackBox, PartialImplementation, make_partial,
                           insert_random_error)


def run_all(spec, partial, seed=0):
    return {
        "rp": check_random_patterns(spec, partial, patterns=300,
                                    seed=seed).error_found,
        "x01": check_symbolic_01x(spec, partial).error_found,
        "local": check_local(spec, partial).error_found,
        "oe": check_output_exact(spec, partial).error_found,
        "ie": check_input_exact(spec, partial).error_found,
    }


def assert_chain(found, context):
    assert not (found["rp"] and not found["x01"]), context
    assert not (found["x01"] and not found["local"]), context
    assert not (found["local"] and not found["oe"]), context
    assert not (found["oe"] and not found["ie"]), context


@pytest.mark.parametrize("factory,boxes", [
    (alu4_like, 1), (alu4_like, 3), (comp_like, 2), (term1_like, 2)])
def test_mutation_campaign_monotone(factory, boxes):
    spec = factory()
    partial = make_partial(spec, fraction=0.1, num_boxes=boxes, seed=17)
    rng = random.Random(23)
    for i in range(8):
        mutated, mutation = insert_random_error(partial.circuit, rng)
        case = PartialImplementation(mutated, partial.boxes)
        found = run_all(spec, case, seed=i)
        assert_chain(found, (factory.__name__, boxes, mutation))


@pytest.mark.parametrize("factory,boxes", [
    (alu4_like, 1), (alu4_like, 4), (comp_like, 3)])
def test_clean_carves_never_flagged(factory, boxes):
    spec = factory()
    for seed in (3, 7):
        partial = make_partial(spec, fraction=0.12, num_boxes=boxes,
                               seed=seed)
        found = run_all(spec, partial, seed=seed)
        assert not any(found.values()), (factory.__name__, boxes, seed,
                                         found)


def random_tiny_instance(seed):
    """Random spec + partial with one tiny box (oracle-tractable)."""
    rng = random.Random(seed)
    builder = CircuitBuilder("spec%d" % seed)
    pool = [builder.input("x%d" % i) for i in range(4)]
    for _ in range(rng.randint(4, 10)):
        gtype = rng.choice([GateType.AND, GateType.OR, GateType.XOR,
                            GateType.NAND, GateType.NOR])
        srcs = rng.sample(pool, min(len(pool), 2))
        pool.append(builder.gate(gtype, srcs))
    outs = pool[-2:]
    builder.outputs(outs, "f")
    spec = builder.build()

    impl_builder = CircuitBuilder("impl%d" % seed)
    for net in spec.inputs:
        impl_builder.input(net)
    # impl: same structure but one net replaced by a box output and a
    # random gate possibly mutated
    box_inputs = tuple(rng.sample(spec.inputs, 2))
    pool2 = list(spec.inputs) + ["bb"]
    for _ in range(rng.randint(3, 8)):
        gtype = rng.choice([GateType.AND, GateType.OR, GateType.XOR,
                            GateType.NOR])
        srcs = rng.sample(pool2, 2)
        pool2.append(impl_builder.gate(gtype, srcs))
    for k in range(2):
        net = pool2[-(k + 1)]
        impl_builder.output(impl_builder.buf(net), "g%d" % k)
    impl = impl_builder.circuit
    impl.validate(allow_free=True)
    free = impl.free_nets()
    boxes = [BlackBox("BB1", box_inputs, tuple(free))] if free else []
    if not free:
        return None
    return spec, PartialImplementation(impl, boxes)


@pytest.mark.parametrize("seed", range(25))
def test_single_box_input_exact_matches_oracle(seed):
    """Theorem 2.2: for one box, input exact == ground truth."""
    instance = random_tiny_instance(seed)
    if instance is None:
        pytest.skip("no box in this instance")
    spec, partial = instance
    verdict = check_input_exact(spec, partial)
    truth = is_extendable(spec, partial, limit=1 << 18)
    assert verdict.error_found == (not truth), seed
    assert verdict.exact
    # monotone chain on the same instance
    found = run_all(spec, partial, seed=seed)
    assert_chain(found, seed)
    # soundness of every weaker check
    if truth:
        assert not any(found.values()), seed
