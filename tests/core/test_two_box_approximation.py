"""The approximation direction of equation (1) for two boxes.

For b >= 2 the input exact check is *not* exact (Theorem 2.1's
decomposition is NP-complete), but it must stay sound: whenever it
reports an error, the brute-force oracle must confirm no extension
exists.  The converse may fail — the check may miss errors — which is
precisely the paper's "approximation for b >= 2".
"""

import random

import pytest

from repro.circuit import CircuitBuilder, GateType
from repro.core import (check_input_exact, check_output_exact,
                        is_extendable)
from repro.partial import BlackBox, PartialImplementation


def random_two_box_instance(seed):
    """Tiny spec + partial with two one-output boxes (oracle-sized)."""
    rng = random.Random(seed)
    builder = CircuitBuilder("spec%d" % seed)
    pool = [builder.input("x%d" % i) for i in range(4)]
    for _ in range(rng.randint(4, 9)):
        gtype = rng.choice([GateType.AND, GateType.OR, GateType.XOR,
                            GateType.NAND, GateType.NOR])
        pool.append(builder.gate(gtype, rng.sample(pool, 2)))
    builder.outputs(pool[-2:], "f")
    spec = builder.build()

    impl_builder = CircuitBuilder("impl%d" % seed)
    for net in spec.inputs:
        impl_builder.input(net)
    pool2 = list(spec.inputs) + ["bbA", "bbB"]
    for _ in range(rng.randint(3, 7)):
        gtype = rng.choice([GateType.AND, GateType.OR, GateType.XOR,
                            GateType.NOR])
        pool2.append(impl_builder.gate(gtype, rng.sample(pool2, 2)))
    for k in range(2):
        impl_builder.output(impl_builder.buf(pool2[-(k + 1)]),
                            "g%d" % k)
    impl = impl_builder.circuit
    impl.validate(allow_free=True)
    free = set(impl.free_nets())
    if free != {"bbA", "bbB"}:
        return None
    boxes = [
        BlackBox("A", tuple(rng.sample(spec.inputs, 2)), ("bbA",)),
        BlackBox("B", tuple(rng.sample(spec.inputs, 2)), ("bbB",)),
    ]
    return spec, PartialImplementation(impl, boxes)


@pytest.mark.parametrize("seed", range(30))
def test_equation_one_is_sound_for_two_boxes(seed):
    instance = random_two_box_instance(seed)
    if instance is None:
        pytest.skip("a box output went unused")
    spec, partial = instance
    truth = is_extendable(spec, partial, limit=1 << 16)
    ie = check_input_exact(spec, partial)
    oe = check_output_exact(spec, partial)
    # soundness: an error verdict implies genuinely unextendable
    if ie.error_found:
        assert not truth, seed
    if oe.error_found:
        assert not truth, seed
    # dominance: ie finds everything oe finds
    if oe.error_found:
        assert ie.error_found, seed
    # the two-box verdict must not claim exactness
    assert not ie.exact
    # completeness direction may fail (approximation); when the oracle
    # says extendable, no sound check may fire
    if truth:
        assert not ie.error_found and not oe.error_found, seed
