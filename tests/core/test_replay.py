"""Every check's counterexample must survive independent replay."""

import random

import pytest

from repro.circuit import CircuitError
from repro.core import (check_local, check_output_exact,
                        check_random_patterns, check_symbolic_01x,
                        verify_counterexample)
from repro.generators import alu4_like, figure2a, figure2b, figure3a
from repro.partial import (PartialImplementation, insert_random_error,
                           make_partial)


class TestFigureCounterexamples:
    def test_figure2a_01x_cex(self):
        spec, partial = figure2a()
        result = check_symbolic_01x(spec, partial)
        assert verify_counterexample(spec, partial,
                                     result.counterexample)

    def test_figure2b_local_cex(self):
        spec, partial = figure2b()
        result = check_local(spec, partial)
        assert verify_counterexample(spec, partial,
                                     result.counterexample)

    def test_figure3a_output_exact_cex(self):
        spec, partial = figure3a()
        result = check_output_exact(spec, partial)
        assert verify_counterexample(spec, partial,
                                     result.counterexample)

    def test_non_counterexample_rejected(self):
        spec, partial = figure2b()
        bogus = {net: False for net in spec.inputs}
        # all-zero input: spec f1 = 0, impl can match -> not a cex
        assert not verify_counterexample(spec, partial, bogus)


class TestCampaignCounterexamples:
    @pytest.mark.parametrize("seed", range(6))
    def test_all_reported_cexs_replay(self, seed):
        spec = alu4_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=1,
                               seed=seed)
        mutated, _ = insert_random_error(partial.circuit,
                                         random.Random(seed))
        case = PartialImplementation(mutated, partial.boxes)
        for checker in (lambda: check_random_patterns(
                            spec, case, patterns=300, seed=seed),
                        lambda: check_symbolic_01x(spec, case),
                        lambda: check_local(spec, case),
                        lambda: check_output_exact(spec, case)):
            result = checker()
            if result.error_found and result.counterexample:
                assert verify_counterexample(
                    spec, case, result.counterexample), result.check


class TestLimits:
    def test_too_many_boxes_rejected(self):
        spec = alu4_like()
        partial = make_partial(spec, fraction=0.3, num_boxes=1, seed=1)
        if len(partial.box_outputs) < 5:
            pytest.skip("box too small to exercise the limit")
        with pytest.raises(CircuitError):
            verify_counterexample(
                spec, partial, {n: False for n in spec.inputs},
                limit=4)
