"""Tests for the brute-force extendability oracle."""

import pytest

from repro.circuit import CircuitBuilder, CircuitError
from repro.core import (count_extensions, find_extension, is_extendable,
                        truth_table_circuit)
from repro.generators import figure1, figure3a, figure3b
from repro.partial import BlackBox, PartialImplementation


class TestTruthTableCircuit:
    @pytest.mark.parametrize("table", range(16))
    def test_two_input_tables(self, table):
        circuit = truth_table_circuit(2, [table])
        for row in range(4):
            asg = {"i0": bool(row & 1), "i1": bool(row & 2)}
            assert circuit.evaluate(asg)["o0"] == bool((table >> row) & 1)

    def test_multi_output(self):
        circuit = truth_table_circuit(1, [0b10, 0b01])
        assert circuit.evaluate({"i0": True}) == {"o0": True,
                                                  "o1": False}
        assert circuit.evaluate({"i0": False}) == {"o0": False,
                                                   "o1": True}

    def test_zero_inputs(self):
        circuit = truth_table_circuit(0, [1, 0])
        assert circuit.evaluate({}) == {"o0": True, "o1": False}

    def test_range_checked(self):
        with pytest.raises(CircuitError):
            truth_table_circuit(1, [4])


class TestFindExtension:
    def test_figure1_has_extension(self):
        spec, partial = figure1()
        tables = find_extension(spec, partial, limit=1 << 18)
        assert tables is not None
        # BB1 must be AND(x4, x5): table 0b1000
        assert tables["BB1"] == (0b1000,)
        # BB2 must be OR: table 0b1110
        assert tables["BB2"] == (0b1110,)

    def test_figure3a_has_none(self):
        spec, partial = figure3a()
        assert find_extension(spec, partial, limit=1 << 18) is None

    def test_figure3b_has_none(self):
        spec, partial = figure3b()
        assert not is_extendable(spec, partial, limit=1 << 18)

    def test_space_limit_enforced(self):
        spec, partial = figure1()
        with pytest.raises(CircuitError):
            find_extension(spec, partial, limit=4)

    def test_count_extensions(self):
        """A box whose output is ignored has every table legal."""
        builder = CircuitBuilder("spec")
        a = builder.input("a")
        builder.output(builder.buf(a), "f")
        spec = builder.build()

        impl = CircuitBuilder("impl")
        impl.input("a")
        impl.output(impl.buf("a"), "g")
        t = impl.and_("z", "a")  # reads the box, result unused as output
        circuit = impl.circuit
        circuit.validate(allow_free=True)
        partial = PartialImplementation(
            circuit, [BlackBox("B", ("a",), ("z",))])
        assert count_extensions(spec, partial) == 4  # all 1-in tables
