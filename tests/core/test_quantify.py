"""Tests for quantification scheduling (bucket elimination)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import Bdd
from repro.core import exists_conj, forall_disj

NAMES = ["w%d" % i for i in range(7)]


def random_functions(bdd, rng, count):
    fns = []
    for _ in range(count):
        f = bdd.constant(rng.random() < 0.5)
        for name in rng.sample(NAMES, rng.randint(1, 4)):
            v = bdd.var(name)
            op = rng.randrange(3)
            f = f & v if op == 0 else (f | v if op == 1 else f ^ v)
        fns.append(f)
    return fns


class TestExistsConj:
    def test_empty_function_list(self):
        bdd = Bdd()
        bdd.add_vars(NAMES)
        assert exists_conj(bdd, [], NAMES).is_true

    def test_no_variables(self):
        bdd = Bdd()
        bdd.add_vars(NAMES)
        a, b = bdd.var("w0"), bdd.var("w1")
        assert exists_conj(bdd, [a, b], []) == (a & b)

    def test_early_false(self):
        bdd = Bdd()
        bdd.add_vars(NAMES)
        a = bdd.var("w0")
        assert exists_conj(bdd, [a, ~a], NAMES).is_false

    @pytest.mark.parametrize("seed", range(20))
    def test_matches_monolithic(self, seed):
        rng = random.Random(seed)
        bdd = Bdd()
        bdd.add_vars(NAMES)
        fns = random_functions(bdd, rng, rng.randint(1, 6))
        qvars = rng.sample(NAMES, rng.randint(0, len(NAMES)))
        reference = bdd.conj(fns).exists(qvars)
        assert exists_conj(bdd, fns, qvars) == reference

    def test_disjoint_buckets_never_conjoined(self):
        """With disjoint supports, intermediates stay small: the result
        equals the product of independently quantified factors."""
        bdd = Bdd()
        bdd.add_vars(NAMES)
        f = bdd.var("w0") & bdd.var("w1")
        g = bdd.var("w2") | bdd.var("w3")
        result = exists_conj(bdd, [f, g], ["w0", "w2"])
        assert result == (f.exists(["w0"]) & g.exists(["w2"]))


class TestForallDisj:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_monolithic(self, seed):
        rng = random.Random(seed + 100)
        bdd = Bdd()
        bdd.add_vars(NAMES)
        fns = random_functions(bdd, rng, rng.randint(1, 5))
        qvars = rng.sample(NAMES, rng.randint(0, 4))
        reference = bdd.disj(fns).forall(qvars)
        assert forall_disj(bdd, fns, qvars) == reference
