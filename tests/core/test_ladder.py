"""Tests for the check ladder driver."""

import pytest

from repro.core import (CHECK_ORDER, check_partial_equivalence,
                        run_ladder)
from repro.generators import figure1, figure2a, figure3b
from repro.partial import BlackBox, PartialImplementation
from repro.circuit import CircuitBuilder


class TestRunLadder:
    def test_order_follows_paper(self):
        assert CHECK_ORDER == ("random_pattern", "symbolic_01x", "local",
                               "output_exact", "input_exact")
        spec, partial = figure1()
        results = run_ladder(spec, partial, patterns=50, seed=0,
                             stop_at_first_error=False)
        assert [r.check for r in results] == list(CHECK_ORDER)

    def test_stop_at_first_error(self):
        spec, partial = figure2a()
        results = run_ladder(spec, partial, patterns=2000, seed=0)
        assert results[-1].error_found
        assert len(results) < len(CHECK_ORDER)

    def test_subset_of_checks(self):
        spec, partial = figure1()
        results = run_ladder(spec, partial,
                             checks=("local", "input_exact"))
        assert [r.check for r in results] == ["local", "input_exact"]

    def test_unknown_check_rejected(self):
        spec, partial = figure1()
        with pytest.raises(ValueError):
            run_ladder(spec, partial, checks=("magic",))

    def test_shared_context_consistency(self):
        """All Z_i rungs share one BDD; verdicts must match standalone."""
        from repro.core import check_local, check_output_exact

        spec, partial = figure3b()
        results = run_ladder(spec, partial, patterns=20, seed=1,
                             stop_at_first_error=False)
        by_name = {r.check: r for r in results}
        assert by_name["local"].error_found \
            == check_local(spec, partial).error_found
        assert by_name["output_exact"].error_found \
            == check_output_exact(spec, partial).error_found
        assert by_name["input_exact"].error_found


class TestOneCallApi:
    def test_returns_most_accurate_verdict(self):
        spec, partial = figure3b()
        result = check_partial_equivalence(spec, partial, patterns=20,
                                           seed=0)
        assert result.check == "input_exact"
        assert result.error_found

    def test_clean_design(self):
        spec, partial = figure1()
        result = check_partial_equivalence(spec, partial, patterns=20,
                                           seed=0)
        assert result.check == "input_exact"
        assert not result.error_found


class TestDegenerateNoBoxes:
    def test_box_free_partial_is_equivalence_checking(self):
        builder = CircuitBuilder("spec")
        a, b = builder.input("a"), builder.input("b")
        builder.output(builder.and_(a, b), "f")
        spec = builder.build()

        good = CircuitBuilder("good")
        good.input("a")
        good.input("b")
        good.output(good.nor_(good.not_("a"), good.not_("b")), "f")
        partial_good = PartialImplementation(good.build(), [])

        bad = CircuitBuilder("bad")
        bad.input("a")
        bad.input("b")
        bad.output(bad.or_("a", "b"), "f")
        partial_bad = PartialImplementation(bad.build(), [])

        ok = run_ladder(spec, partial_good, patterns=16, seed=0,
                        stop_at_first_error=False)
        assert not any(r.error_found for r in ok)
        assert ok[-1].exact   # zero boxes: verdict is exact

        nok = run_ladder(spec, partial_bad, patterns=64, seed=0,
                         stop_at_first_error=False)
        assert nok[-1].error_found
