"""Tests for the complete-circuit (box-free) equivalence checker."""

import random

import pytest

from repro.circuit import CircuitBuilder, CircuitError
from repro.core import check_equivalence
from repro.generators import (alu4_like, c1355_like, c499_like,
                              ripple_adder_circuit)
from repro.partial import insert_random_error


class TestEquivalent:
    def test_self_equivalence(self):
        spec = alu4_like()
        assert check_equivalence(spec, spec.copy()).equivalent

    def test_c499_equals_c1355(self):
        """The classic benchmark relation, on our stand-ins."""
        result = check_equivalence(c499_like(), c1355_like())
        assert result.equivalent

    def test_structurally_different_adders(self):
        a = ripple_adder_circuit(4)
        from repro.circuit.transform import expand_to_two_input
        b = expand_to_two_input(a)
        assert check_equivalence(a, b).equivalent


class TestInequivalent:
    def test_mutant_detected_with_valid_counterexample(self):
        spec = alu4_like()
        rng = random.Random(0)
        found_diff = 0
        for _ in range(6):
            mutant, mutation = insert_random_error(spec, rng)
            result = check_equivalence(spec, mutant)
            if result.equivalent:
                continue  # some mutations are functionally neutral
            found_diff += 1
            cex = result.counterexample
            s = spec.evaluate(cex)
            m = mutant.evaluate(cex)
            outs_s = [s[n] for n in spec.outputs]
            outs_m = [m[n] for n in mutant.outputs]
            assert outs_s != outs_m
            assert result.failing_output in spec.outputs
        assert found_diff >= 3

    def test_constant_difference(self):
        b1 = CircuitBuilder("one")
        b1.input("a")
        b1.output(b1.const(True), "f")
        b2 = CircuitBuilder("id")
        b2.input("a")
        b2.output(b2.buf("a"), "f")
        result = check_equivalence(b1.build(), b2.build())
        assert not result.equivalent
        assert result.counterexample == {"a": False}


class TestInterfaceChecks:
    def test_input_mismatch_rejected(self):
        b1 = CircuitBuilder()
        b1.input("a")
        b1.output(b1.buf("a"), "f")
        b2 = CircuitBuilder()
        b2.input("b")
        b2.output(b2.buf("b"), "f")
        with pytest.raises(CircuitError):
            check_equivalence(b1.build(), b2.build())

    def test_output_count_mismatch_rejected(self):
        b1 = CircuitBuilder()
        b1.input("a")
        b1.output(b1.buf("a"), "f")
        b2 = CircuitBuilder()
        b2.input("a")
        b2.output(b2.buf("a"), "f")
        b2.output(b2.not_("a"), "g")
        with pytest.raises(CircuitError):
            check_equivalence(b1.build(), b2.build())

    def test_partial_circuits_rejected(self):
        b1 = CircuitBuilder()
        b1.input("a")
        b1.output(b1.and_("a", "z"), "f")
        partial = b1.circuit
        partial.validate(allow_free=True)
        b2 = CircuitBuilder()
        b2.input("a")
        b2.output(b2.buf("a"), "f")
        with pytest.raises(CircuitError):
            check_equivalence(partial, b2.build())
