"""Tests for the exact two-box decision procedure (Theorem 2.1, b=2)."""

import pytest

from repro.circuit import CircuitBuilder, CircuitError
from repro.core import (check_input_exact, exact_two_box_check,
                        is_extendable, truth_table_circuit)
from repro.generators import figure1
from repro.partial import BlackBox, PartialImplementation

from .test_two_box_approximation import random_two_box_instance


class TestExactTwoBox:
    def test_figure1_extendable(self):
        spec, partial = figure1()
        assert exact_two_box_check(spec, partial)

    def test_xor_of_two_boxes_reading_the_input(self):
        """f = z1 XOR z2 with both boxes reading 'a' is extendable
        (z1 = a, z2 = 0); the exact procedure must find it."""
        builder = CircuitBuilder("spec")
        a = builder.input("a")
        builder.output(builder.buf(a), "f")
        spec = builder.build()

        impl = CircuitBuilder("impl")
        impl.input("a")
        impl.output(impl.xor_("z1", "z2"), "f")
        circuit = impl.circuit
        circuit.validate(allow_free=True)
        partial = PartialImplementation(circuit, [
            BlackBox("B1", ("a",), ("z1",)),
            BlackBox("B2", ("a",), ("z2",)),
        ])
        # With both boxes reading 'a' this IS extendable (z1=a, z2=0).
        assert exact_two_box_check(spec, partial)
        assert is_extendable(spec, partial, limit=1 << 10)

    @pytest.mark.parametrize("seed", [0, 3, 7, 11, 19])
    def test_agrees_with_brute_force(self, seed):
        instance = random_two_box_instance(seed)
        if instance is None:
            pytest.skip("instance had unused box output")
        spec, partial = instance
        assert exact_two_box_check(spec, partial) \
            == is_extendable(spec, partial, limit=1 << 16)

    def test_dominates_equation_one(self):
        """eq (1) error implies exact-unextendable (soundness)."""
        for seed in (1, 5, 9):
            instance = random_two_box_instance(seed)
            if instance is None:
                continue
            spec, partial = instance
            if check_input_exact(spec, partial).error_found:
                assert not exact_two_box_check(spec, partial), seed

    def test_wrong_box_count_rejected(self):
        builder = CircuitBuilder("s")
        a = builder.input("a")
        builder.output(builder.and_(a, "z"), "f")
        circuit = builder.circuit
        circuit.validate(allow_free=True)
        partial = PartialImplementation(
            circuit, [BlackBox("B", ("a",), ("z",))])
        spec = CircuitBuilder("sp")
        spec.input("a")
        spec.output(spec.buf("a"), "f")
        with pytest.raises(CircuitError):
            exact_two_box_check(spec.build(), partial)

    def test_limit_enforced(self):
        spec, partial = figure1()
        with pytest.raises(CircuitError):
            exact_two_box_check(spec, partial, limit=2)


class TestSubstituteSome:
    def test_partial_substitution_leaves_other_box(self):
        spec, partial = figure1()
        and_box = truth_table_circuit(2, [0b1000], name="and2")
        staged = partial.substitute_some({"BB1": and_box})
        assert staged.num_boxes == 1
        assert staged.boxes[0].name == "BB2"
        verdict = check_input_exact(spec, staged)
        assert not verdict.error_found
        assert verdict.exact

    def test_wrong_first_box_makes_residual_unextendable(self):
        spec, partial = figure1()
        # BB1 must be AND(x4,x5); force NOR instead.
        nor_box = truth_table_circuit(2, [0b0001], name="nor2")
        staged = partial.substitute_some({"BB1": nor_box})
        assert check_input_exact(spec, staged).error_found

    def test_unknown_box_rejected(self):
        spec, partial = figure1()
        with pytest.raises(CircuitError):
            partial.substitute_some(
                {"ZZ": truth_table_circuit(2, [0])})
