"""Lease arbitration: the fleet's only mutual-exclusion primitive."""

from concurrent.futures import ThreadPoolExecutor

from repro.fleet import LeaseDir
from repro.resilience import inject_lease_contention


class TestLeaseDir:
    def test_exactly_one_winner_under_contention(self, tmp_path):
        leases = LeaseDir(str(tmp_path / "leases"))
        contenders = ["shard-%d#0" % i for i in range(16)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            wins = list(pool.map(
                lambda owner: leases.acquire("deadbeef", owner),
                contenders))
        assert sum(wins) == 1
        assert leases.owner("deadbeef") \
            == contenders[wins.index(True)]

    def test_second_acquire_loses_and_release_reopens(self, tmp_path):
        leases = LeaseDir(str(tmp_path / "leases"))
        assert leases.acquire("k1", "shard-0#0")
        assert not leases.acquire("k1", "shard-1#0")
        assert leases.held("k1")
        assert leases.release("k1")
        assert not leases.release("k1")  # already gone
        assert leases.acquire("k1", "shard-1#0")
        assert leases.owner("k1") == "shard-1#0"

    def test_owner_of_unleased_key_is_none(self, tmp_path):
        leases = LeaseDir(str(tmp_path / "leases"))
        assert leases.owner("nope") is None
        assert not leases.held("nope")

    def test_held_keys_and_clear(self, tmp_path):
        leases = LeaseDir(str(tmp_path / "leases"))
        for key in ("b", "a", "c"):
            leases.acquire(key, "shard-0#0")
        assert leases.held_keys() == ["a", "b", "c"]
        assert leases.clear() == 3
        assert leases.held_keys() == []

    def test_release_many_counts_only_existing(self, tmp_path):
        leases = LeaseDir(str(tmp_path / "leases"))
        leases.acquire("a", "x")
        leases.acquire("b", "x")
        assert leases.release_many(["a", "b", "ghost"]) == 2


class TestLeaseContentionInjector:
    def test_rival_wins_the_injected_race(self, tmp_path):
        leases = LeaseDir(str(tmp_path / "leases"))
        with inject_lease_contention(leases, rival="rival#0",
                                     lose_first=1) as lost:
            assert not leases.acquire("k1", "shard-0#0")
            # Later keys race cleanly again.
            assert leases.acquire("k2", "shard-0#0")
        assert lost == ["k1"]
        assert leases.owner("k1") == "rival#0"
        assert leases.owner("k2") == "shard-0#0"

    def test_injector_restores_the_seam(self, tmp_path):
        leases = LeaseDir(str(tmp_path / "leases"))
        with inject_lease_contention(leases):
            pass
        assert "acquire" not in vars(leases)
        assert leases.acquire("k", "shard-0#0")
