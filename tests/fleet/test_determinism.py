"""Property test: the fleet's output is interleaving-independent.

For any shard count — and any kill-shard fault injected at a random
shard and ordinal — the campaign journal, tables, JSON and CSV must be
byte-identical to a serial run.  The serial reference is computed once
per config; each example replays the fleet against it.
"""

import os
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.export import rows_to_csv, rows_to_json
from repro.experiments.runner import ExperimentConfig
from repro.fleet import FleetConfig, partition
from repro.jobs.engine import run_campaign
from repro.jobs.spec import enumerate_cases
from repro.resilience import BackoffPolicy

from ..jobs.test_pool import stub_task

CONFIG = ExperimentConfig(selections=2, errors=3, patterns=30,
                          benchmarks=["alu4"])

FAST = FleetConfig(heartbeat_interval=0.05, heartbeat_miss=0.4,
                   startup_grace=15.0, poll=0.01, steal_poll=0.02,
                   backoff=BackoffPolicy(base=0.01, multiplier=2.0,
                                         cap=0.1, jitter=0.25,
                                         seed=2001))

_SERIAL = {}


def _serial_reference():
    """(journal bytes, json, csv) of the serial run, computed once."""
    if "ref" not in _SERIAL:
        with tempfile.TemporaryDirectory() as td:
            journal = os.path.join(td, "serial.jsonl")
            result = run_campaign(CONFIG, task=stub_task,
                                  journal=journal)
            with open(journal) as handle:
                bytes_ = handle.read()
        rows = [result.rows[n] for n in result.rows]
        _SERIAL["ref"] = (bytes_, rows_to_json(rows),
                          rows_to_csv(rows))
    return _SERIAL["ref"]


def _run_fleet_campaign(shards, fault):
    with tempfile.TemporaryDirectory() as td:
        journal = os.path.join(td, "fleet.jsonl")
        if fault:
            os.environ["REPRO_FLEET_FAULTS"] = fault
        try:
            result = run_campaign(CONFIG, task=stub_task,
                                  journal=journal, shards=shards,
                                  fleet_config=FAST)
        finally:
            os.environ.pop("REPRO_FLEET_FAULTS", None)
        with open(journal) as handle:
            bytes_ = handle.read()
    rows = [result.rows[n] for n in result.rows]
    return bytes_, rows_to_json(rows), rows_to_csv(rows)


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shards=st.integers(min_value=1, max_value=4))
def test_any_shard_count_matches_serial(shards):
    assert _run_fleet_campaign(shards, None) == _serial_reference()


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shards=st.integers(min_value=1, max_value=3),
       choice=st.integers(min_value=0, max_value=10 ** 6))
def test_random_kill_drill_matches_serial(shards, choice):
    # Aim the kill at a shard that owns at least one case, at a random
    # ordinal within its assignment.  Whether the fault actually fires
    # under a given interleaving (stealing may drain the victim first)
    # is irrelevant to the property: the output must match regardless.
    cases = enumerate_cases(CONFIG)
    assignment = partition(cases, shards)
    nonempty = [s for s, idx in enumerate(assignment) if idx]
    victim = nonempty[choice % len(nonempty)]
    ordinal = 1 + (choice // 7) % len(assignment[victim])
    fault = "kill-shard:%d@%d" % (victim, ordinal)
    assert _run_fleet_campaign(shards, fault) == _serial_reference()
