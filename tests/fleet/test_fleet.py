"""End-to-end fleet tests: determinism, crash drills, stealing.

Tasks live at module level so spawned shard children can import them
by reference (same convention as ``tests.jobs.test_pool``).  All
drills pace supervision with a fast :class:`FleetConfig` so detection
happens in tenths of seconds, and arm faults through
``REPRO_FLEET_FAULTS`` — the same channel the CI drill uses.
"""

import json
import os
import time
from dataclasses import replace

import pytest

from repro.core.result import (OUTCOME_ERROR, OUTCOME_OK,
                               OUTCOME_TIMEOUT)
from repro.experiments.export import rows_to_csv, rows_to_json
from repro.experiments.runner import ExperimentConfig
from repro.fleet import (FleetConfig, case_key_hash, partition,
                         run_fleet, shard_of)
from repro.jobs.engine import run_campaign
from repro.jobs.spec import enumerate_cases
from repro.obs import Tracer
from repro.resilience import BackoffPolicy

from ..jobs.test_pool import stub_task

CONFIG = ExperimentConfig(selections=2, errors=4, patterns=30,
                          benchmarks=["alu4"])

FAST = FleetConfig(heartbeat_interval=0.05, heartbeat_miss=0.4,
                   startup_grace=15.0, poll=0.01, steal_poll=0.02,
                   backoff=BackoffPolicy(base=0.01, multiplier=2.0,
                                         cap=0.1, jitter=0.25,
                                         seed=2001))

# Drills that arm a fault *on a specific shard at a specific ordinal*
# disable stealing: on a loaded single-core runner, a fast shard can
# otherwise drain the victim's whole queue before the victim wins one
# lease, and the fault never fires.  Recovery itself (reschedule over
# the pipe) does not involve stealing.
NOSTEAL = replace(FAST, steal=False)


def slow_task(case):
    """Every case takes long enough for liveness checks to fire."""
    time.sleep(0.7)
    return stub_task(case)


def half_slow_task(case):
    """Cases homed on shard 0 (of 2) are slow; the rest instant."""
    if shard_of(case, 2) == 0:
        time.sleep(0.5)
    return stub_task(case)


def poison_task(case):
    """The first error index kills its whole shard, every attempt."""
    if case.error_index == 0:
        os._exit(3)
    return stub_task(case)


def wedge_task(case):
    """The first error index wedges (runaway check); rest instant."""
    if case.error_index == 0:
        time.sleep(300)
    return stub_task(case)


def _serial_then_fleet(tmp_path, shards, config=CONFIG, task=stub_task,
                       fleet_config=FAST, **fleet_kwargs):
    serial_journal = str(tmp_path / "serial.jsonl")
    fleet_journal = str(tmp_path / ("fleet-%d.jsonl" % shards))
    serial = run_campaign(config, task=task, journal=serial_journal)
    fleet = run_campaign(config, task=task, journal=fleet_journal,
                         shards=shards, fleet_config=fleet_config,
                         **fleet_kwargs)
    with open(serial_journal) as handle:
        serial_bytes = handle.read()
    with open(fleet_journal) as handle:
        fleet_bytes = handle.read()
    return serial, fleet, serial_bytes, fleet_bytes, fleet_journal


def _supervisor_events(fleet_journal):
    path = os.path.join(fleet_journal + ".fleet", "supervisor.jsonl")
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


def _nonempty_shard(config, shards):
    """(shard, assigned count) of a shard that owns at least one case."""
    cases = enumerate_cases(config)
    for shard, indices in enumerate(partition(cases, shards)):
        if indices:
            return shard, len(indices)
    raise AssertionError("no shard owns any case")


class TestByteIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_fleet_matches_serial_exactly(self, tmp_path, shards):
        serial, fleet, a, b, _ = _serial_then_fleet(tmp_path, shards)
        assert a == b
        names = list(serial.rows)
        assert rows_to_json([serial.rows[n] for n in names]) \
            == rows_to_json([fleet.rows[n] for n in names])
        assert rows_to_csv([serial.rows[n] for n in names]) \
            == rows_to_csv([fleet.rows[n] for n in names])

    def test_shards_and_jobs_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_campaign(CONFIG, task=stub_task, jobs=2, shards=2)


class TestKillShardDrill:
    def test_killed_shard_loses_nothing(self, tmp_path, monkeypatch):
        victim, assigned = _nonempty_shard(CONFIG, 2)
        monkeypatch.setenv("REPRO_FLEET_FAULTS",
                           "kill-shard:%d@%d" % (victim,
                                                 min(2, assigned)))
        serial, fleet, a, b, fleet_journal = _serial_then_fleet(
            tmp_path, 2, fleet_config=NOSTEAL)
        assert a == b
        events = {e["ev"] for e in _supervisor_events(fleet_journal)}
        assert "shard_dead" in events
        assert "case_lost" in events
        assert "reschedule" in events

    def test_kill_with_single_shard_respawns(self, tmp_path,
                                             monkeypatch):
        # No survivors: recovery must come from the respawn budget,
        # and the respawned incarnation runs clean (faults only arm
        # incarnation 0), so the drill terminates.
        monkeypatch.setenv("REPRO_FLEET_FAULTS", "kill-shard:0@1")
        serial, fleet, a, b, fleet_journal = _serial_then_fleet(
            tmp_path, 1)
        assert a == b
        events = [e for e in _supervisor_events(fleet_journal)
                  if e["ev"] == "respawn"]
        assert events and events[0]["shard"] == 0


class TestHeartbeatBlackholeDrill:
    def test_silent_shard_is_declared_dead(self, tmp_path,
                                           monkeypatch):
        config = ExperimentConfig(selections=1, errors=3, patterns=30,
                                  benchmarks=["alu4"])
        victim, _ = _nonempty_shard(config, 2)
        monkeypatch.setenv("REPRO_FLEET_FAULTS",
                           "heartbeat-blackhole:%d" % victim)
        # Slow cases keep the blackholed shard busy past the miss
        # window, so quietness — not completion — decides its fate.
        serial, fleet, a, b, fleet_journal = _serial_then_fleet(
            tmp_path, 2, config=config, task=slow_task,
            fleet_config=NOSTEAL)
        assert a == b
        deaths = [e for e in _supervisor_events(fleet_journal)
                  if e["ev"] == "shard_dead"]
        assert any(e["reason"] == "heartbeat-miss" and
                   e["shard"] == victim for e in deaths)


class TestTornJournalDrill:
    def test_torn_tail_is_healed_and_skipped(self, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_FAULTS",
                           "torn-journal:0,torn-journal:1")
        serial, fleet, a, b, _ = _serial_then_fleet(tmp_path, 2)
        assert a == b


class TestWorkStealing:
    def test_idle_shard_steals_from_the_straggler(self, tmp_path):
        serial, fleet, a, b, fleet_journal = _serial_then_fleet(
            tmp_path, 2, task=half_slow_task)
        assert a == b
        steals = [e for e in _supervisor_events(fleet_journal)
                  if e["ev"] == "steal"]
        assert steals, "the fast shard never stole from the slow one"
        assert all(e["thief"] != e["victim"] for e in steals)

    def test_stealing_can_be_disabled(self, tmp_path):
        config = ExperimentConfig(selections=1, errors=3, patterns=30,
                                  benchmarks=["alu4"])
        serial, fleet, a, b, fleet_journal = _serial_then_fleet(
            tmp_path, 2, config=config,
            fleet_config=FleetConfig(
                heartbeat_interval=0.05, heartbeat_miss=5.0,
                poll=0.01, steal=False))
        assert a == b
        assert not [e for e in _supervisor_events(fleet_journal)
                    if e["ev"] == "steal"]


class TestRetryExhaustion:
    def test_poison_case_gets_terminal_error_record(self, tmp_path):
        config = ExperimentConfig(selections=1, errors=3, patterns=30,
                                  benchmarks=["alu4"])
        cases = enumerate_cases(config)
        merged = run_fleet(cases, shards=2,
                           base_dir=str(tmp_path / "fleet"),
                           config=NOSTEAL, task=poison_task,
                           max_retries=1)
        assert set(merged) == {c.key for c in cases}
        poison = next(c for c in cases if c.error_index == 0)
        record = merged[poison.key]
        assert record.outcome == OUTCOME_ERROR
        assert "retries exhausted" in record.checks["r.p."].detail
        for case in cases:
            if case.error_index != 0:
                assert merged[case.key].outcome == OUTCOME_OK

    def test_wedged_case_times_out_terminally(self, tmp_path):
        config = ExperimentConfig(selections=1, errors=3, patterns=30,
                                  benchmarks=["alu4"])
        cases = enumerate_cases(config)
        merged = run_fleet(cases, shards=2,
                           base_dir=str(tmp_path / "fleet"),
                           config=NOSTEAL, task=wedge_task,
                           case_timeout=0.5, max_retries=0)
        wedged = next(c for c in cases if c.error_index == 0)
        assert merged[wedged.key].outcome == OUTCOME_TIMEOUT
        for case in cases:
            if case.error_index != 0:
                assert merged[case.key].outcome == OUTCOME_OK


class TestResume:
    def test_completed_fleet_dir_resumes_without_rerunning(
            self, tmp_path):
        cases = enumerate_cases(CONFIG)
        base = str(tmp_path / "fleet")
        first = run_fleet(cases, shards=2, base_dir=base,
                          config=FAST, task=stub_task)
        second = run_fleet(cases, shards=2, base_dir=base,
                          config=FAST, task=stub_task)
        assert {k: r.to_json_line() for k, r in first.items()} \
            == {k: r.to_json_line() for k, r in second.items()}
        path = os.path.join(base, "supervisor.jsonl")
        with open(path) as handle:
            starts = [json.loads(line) for line in handle
                      if '"fleet_start"' in line]
        assert starts[0]["resumed"] == 0
        assert starts[1]["resumed"] == len(cases)
        assert starts[1]["cases"] == 0


class TestSupervisorTracing:
    def test_recovery_decisions_become_trace_events(self, tmp_path,
                                                    monkeypatch):
        config = ExperimentConfig(selections=1, errors=3, patterns=30,
                                  benchmarks=["alu4"])
        cases = enumerate_cases(config)
        victim, assigned = _nonempty_shard(config, 2)
        monkeypatch.setenv("REPRO_FLEET_FAULTS",
                           "kill-shard:%d@1" % victim)
        tracer = Tracer()
        run_fleet(cases, shards=2, base_dir=str(tmp_path / "fleet"),
                  config=NOSTEAL, task=stub_task, tracer=tracer)
        names = {event.get("name") for event in tracer.events}
        assert "fleet" in names
        assert "fleet:shard-dead" in names
        assert "fleet:lost" in names
        assert "fleet:reschedule" in names
