"""SlotFleet: the async slot substrate with crash governance."""

import asyncio
import time

import pytest

from repro.core.result import OUTCOME_ERROR, OUTCOME_OK
from repro.fleet import SlotFleet
from repro.obs import Tracer
from repro.resilience import BackoffPolicy

from ..jobs.test_pool import crash_task, make_cases, stub_task

FAST_BACKOFF = BackoffPolicy(base=0.01, multiplier=2.0, cap=0.05,
                             jitter=0.25, seed=11)


def _fleet(task, slots=2, tracer=None):
    return SlotFleet(slots=slots, task=task, backoff=FAST_BACKOFF,
                     tracer=tracer)


class TestSlotFleet:
    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            SlotFleet(slots=0)

    def test_runs_items_and_recycles_slots(self):
        async def scenario():
            fleet = _fleet(stub_task)
            await fleet.start()
            try:
                assert fleet.idle_slots == 2
                records = []
                for case in make_cases(4):
                    pool = await fleet.acquire()
                    try:
                        records.append(await fleet.run(pool, case))
                    finally:
                        fleet.release(pool)
                assert fleet.idle_slots == 2
                return records
            finally:
                fleet.close()

        records = asyncio.run(scenario())
        assert [r.outcome for r in records] == [OUTCOME_OK] * 4
        assert all(r.case.error_index == i
                   for i, r in enumerate(records))

    def test_crash_throttles_slot_and_traces_respawn(self):
        tracer = Tracer()

        async def scenario():
            fleet = _fleet(crash_task, tracer=tracer)
            await fleet.start()
            try:
                crashing = make_cases(1)[0]  # error_index 0 crashes
                pool = await fleet.acquire()
                start = time.monotonic()
                record = await fleet.run(pool, crashing)
                elapsed = time.monotonic() - start
                throttled = fleet.stats()["throttled"]
                fleet.release(pool)

                healthy = make_cases(2)[1]
                pool = await fleet.acquire()
                clean = await fleet.run(pool, healthy)
                fleet.release(pool)
                return record, elapsed, throttled, clean, fleet.stats()
            finally:
                fleet.close()

        record, elapsed, throttled, clean, stats = asyncio.run(scenario())
        # The pool retried the deterministic crasher to a terminal
        # ERROR record; the fleet layer added a backoff sleep.
        assert record.outcome == OUTCOME_ERROR
        assert elapsed >= 0.01
        assert throttled == 1
        assert stats["crashes"] >= 1
        # A clean run on any slot resets that slot's streak.
        assert clean.outcome == OUTCOME_OK
        names = [e.get("name") for e in tracer.events]
        assert "slot:respawn" in names

    def test_stats_shape(self):
        async def scenario():
            fleet = _fleet(stub_task, slots=3)
            await fleet.start()
            try:
                return fleet.stats()
            finally:
                fleet.close()

        stats = asyncio.run(scenario())
        assert stats == {"slots": 3, "idle": 3, "crashes": 0,
                         "timeout_kills": 0, "throttled": 0}
