"""Shard assignment and the deterministic merge: pure functions."""

import pytest

from repro.core.result import (OUTCOME_ERROR, OUTCOME_OK,
                               OUTCOME_TIMEOUT)
from repro.fleet import (case_key_hash, merge_case_events, partition,
                         pick_record, shard_of)
from repro.jobs import CaseRecord, CaseSpec, CheckOutcome

from ..jobs.test_pool import make_cases, stub_task


class TestShardOf:
    def test_pure_function_of_case_key(self):
        cases = make_cases(12)
        first = [shard_of(c, 4) for c in cases]
        assert [shard_of(c, 4) for c in reversed(cases)] \
            == list(reversed(first))

    def test_in_range(self):
        for case in make_cases(20):
            for shards in (1, 2, 3, 7):
                assert 0 <= shard_of(case, shards) < shards

    def test_single_shard_owns_everything(self):
        assert all(shard_of(c, 1) == 0 for c in make_cases(10))

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            shard_of(make_cases(1)[0], 0)

    def test_key_hash_is_stable_and_distinct(self):
        cases = make_cases(16)
        hashes = [case_key_hash(c) for c in cases]
        assert hashes == [case_key_hash(c) for c in cases]
        assert len(set(hashes)) == len(cases)
        assert all(len(h) == 16 for h in hashes)


class TestPartition:
    def test_covers_every_index_exactly_once(self):
        cases = make_cases(17)
        assignment = partition(cases, 4)
        flat = sorted(i for part in assignment for i in part)
        assert flat == list(range(17))

    def test_preserves_canonical_order_within_shards(self):
        assignment = partition(make_cases(23), 3)
        for part in assignment:
            assert part == sorted(part)

    def test_independent_of_pending_set(self):
        # A case's home shard must not move when *other* cases are
        # already done — that is what makes stealing recomputable.
        cases = make_cases(10)
        full = partition(cases, 3)
        owner = {}
        for shard, indices in enumerate(full):
            for i in indices:
                owner[cases[i].key] = shard
        subset = cases[3:9]
        for shard, indices in enumerate(partition(subset, 3)):
            for i in indices:
                assert owner[subset[i].key] == shard


def _record(case, outcome=OUTCOME_OK, detail=""):
    return CaseRecord(
        case=case, outcome=outcome, seconds=0.001,
        inputs=2, outputs=1, spec_nodes=3, mutation="stub",
        checks={c: CheckOutcome(outcome=outcome, detail=detail)
                for c in case.checks})


class TestMerge:
    def test_identical_duplicates_pick_that_record(self):
        case = make_cases(1)[0]
        a, b = stub_task(case), stub_task(case)
        assert pick_record([a, b]).to_json_line() == a.to_json_line()

    def test_completed_verdict_beats_kill_artifact(self):
        # A blackholed-but-alive shard finished the case; the
        # supervisor also manufactured a timeout/error for it.  The
        # real verdict must win regardless of list order.
        case = make_cases(1)[0]
        good = _record(case, OUTCOME_OK)
        kill = _record(case, OUTCOME_TIMEOUT)
        err = _record(case, OUTCOME_ERROR)
        for order in ([good, kill, err], [err, kill, good],
                      [kill, good, err]):
            assert pick_record(order).outcome == OUTCOME_OK

    def test_tie_break_is_canonical_json(self):
        case = make_cases(1)[0]
        a = _record(case, OUTCOME_ERROR, detail="aaa")
        b = _record(case, OUTCOME_ERROR, detail="bbb")
        assert pick_record([b, a]) is a
        assert pick_record([a, b]) is a

    def test_missing_case_raises_loudly(self):
        cases = make_cases(2)
        events = {case_key_hash(cases[0]): [stub_task(cases[0])]}
        with pytest.raises(RuntimeError, match="missing records"):
            merge_case_events(cases, events)

    def test_merges_one_record_per_case(self):
        cases = make_cases(3)
        events = {case_key_hash(c): [stub_task(c), stub_task(c)]
                  for c in cases}
        merged = merge_case_events(cases, events)
        assert set(merged) == {c.key for c in cases}
