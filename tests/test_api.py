"""Tests for the top-level BlackBoxChecker facade."""

import pytest

from repro import (BlackBoxChecker, CHECK_ORDER, CircuitBuilder,
                   CircuitError, PartialImplementation)
from repro.generators import alu4_like, figure3b
from repro.partial import Mutation, apply_mutation


@pytest.fixture(scope="module")
def checker():
    return BlackBoxChecker(alu4_like())


class TestConstruction:
    def test_requires_complete_spec(self):
        builder = CircuitBuilder()
        builder.input("a")
        builder.output(builder.and_("a", "z"), "f")
        partial = builder.circuit
        partial.validate(allow_free=True)
        with pytest.raises(CircuitError):
            BlackBoxChecker(partial)

    def test_repr(self, checker):
        assert "alu4" in repr(checker)


class TestWorkflow:
    def test_carve_check_synthesize_complete(self, checker):
        partial = checker.carve(fraction=0.1, seed=4)
        results = checker.check(partial, patterns=200, seed=0,
                                stop_at_first_error=False)
        assert [r.check for r in results] == list(CHECK_ORDER)
        assert not checker.is_refuted(partial, patterns=200, seed=0)
        complete = checker.complete(partial)
        assert complete is not None
        assert checker.equivalent(complete).equivalent

    def test_check_one(self, checker):
        partial = checker.carve(fraction=0.1, seed=4)
        result = checker.check_one(partial, "output_exact")
        assert result.check == "output_exact"
        with pytest.raises(ValueError):
            checker.check_one(partial, "magic")

    def test_refuted_design(self):
        spec, partial = figure3b()
        checker = BlackBoxChecker(spec)
        assert checker.is_refuted(partial, patterns=50, seed=0)
        assert checker.synthesize(partial) is None
        assert checker.complete(partial) is None

    def test_diagnose(self, checker):
        impl = apply_mutation(checker.spec,
                              Mutation("invert_output",
                                       checker.spec.gates[5].output))
        if checker.equivalent(impl).equivalent:
            pytest.skip("mutation was neutral")
        diagnosis = checker.diagnose(
            impl, [checker.spec.gates[5].output])
        assert diagnosis.confined


class TestResourceAndReuseThreading:
    """check() threads budget/preflight/cache through to the ladder."""

    def test_cache_round_trip_is_byte_identical(self, checker,
                                                tmp_path):
        from repro.analysis.static import CheckCache

        partial = checker.carve(fraction=0.1, seed=4)
        cache = CheckCache(str(tmp_path / "cache"))
        cold = checker.check(partial, patterns=100, seed=0,
                             stop_at_first_error=False, cache=cache)
        assert cache.stats()["stores"] == len(cold)
        warm_cache = CheckCache(cache.root)
        warm = checker.check(partial, patterns=100, seed=0,
                             stop_at_first_error=False,
                             cache=warm_cache)
        assert warm_cache.stats()["hits"] == len(warm)
        assert all(r.stats.get("check_cache") == "hit" for r in warm)
        assert [(r.check, r.outcome, r.error_found, r.seconds)
                for r in warm] \
            == [(r.check, r.outcome, r.error_found, r.seconds)
                for r in cold]

    def test_preflight_passes_through(self, checker):
        partial = checker.carve(fraction=0.1, seed=4)
        results = checker.check(partial, patterns=100, seed=0,
                                preflight=True,
                                stop_at_first_error=False)
        assert any("static" in (r.stats or {})
                   or r.check == "preflight" for r in results) \
            or all(r.outcome == "ok" for r in results)

    def test_budget_passes_through(self, checker):
        from repro.resilience.budget import Budget

        partial = checker.carve(fraction=0.1, seed=4)
        results = checker.check(partial, patterns=50, seed=0,
                                stop_at_first_error=False,
                                budget=Budget(max_live_nodes=64))
        assert any(r.outcome == "inconclusive" for r in results)
