"""FairScheduler unit tests: bounds, rotation, backoff sizing."""

import pytest

from repro.serve.executor import JobSpec
from repro.serve.scheduler import FairScheduler, QueueFull


def spec(job_id, tenant):
    return JobSpec(id=job_id, tenant=tenant, fmt="blif",
                   spec_text="", impl_text="", boxes=(),
                   checks=("random_pattern",))


class TestAdmission:
    def test_global_bound(self):
        sched = FairScheduler(max_queued=3, max_queued_per_tenant=3)
        for i in range(3):
            sched.submit(spec("j%d" % i, "a"))
        with pytest.raises(QueueFull) as err:
            sched.submit(spec("j3", "b"))
        assert err.value.retry_after >= 1.0
        assert sched.depth == 3

    def test_per_tenant_bound_leaves_room_for_others(self):
        sched = FairScheduler(max_queued=10, max_queued_per_tenant=2)
        sched.submit(spec("a1", "a"))
        sched.submit(spec("a2", "a"))
        with pytest.raises(QueueFull):
            sched.submit(spec("a3", "a"))
        # Another tenant still gets in.
        sched.submit(spec("b1", "b"))
        assert sched.tenant_depths() == {"a": 2, "b": 1}

    def test_default_per_tenant_is_half(self):
        assert FairScheduler(max_queued=64).max_queued_per_tenant == 32
        assert FairScheduler(max_queued=1).max_queued_per_tenant == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FairScheduler(max_queued=0)


class TestDispatch:
    def test_round_robin_across_tenants(self):
        sched = FairScheduler(max_queued=16, max_queued_per_tenant=8)
        for i in range(3):
            sched.submit(spec("a%d" % i, "a"))
        for i in range(3):
            sched.submit(spec("b%d" % i, "b"))
        order = [sched.next_job().spec.id for _ in range(6)]
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]
        assert sched.next_job() is None
        assert sched.depth == 0

    def test_fifo_within_tenant(self):
        sched = FairScheduler(max_queued=8)
        sched.submit(spec("a0", "a"))
        sched.submit(spec("a1", "a"))
        assert sched.next_job().spec.id == "a0"
        assert sched.next_job().spec.id == "a1"

    def test_bounded_starvation_with_skewed_load(self):
        # Tenant a floods; tenant b's single job must be served within
        # one round of the rotation, not after a's whole backlog.
        sched = FairScheduler(max_queued=32, max_queued_per_tenant=20)
        for i in range(10):
            sched.submit(spec("a%d" % i, "a"))
        sched.submit(spec("b0", "b"))
        order = [sched.next_job().spec.id for _ in range(11)]
        assert order.index("b0") <= 1

    def test_late_tenant_joins_rotation(self):
        sched = FairScheduler(max_queued=8)
        sched.submit(spec("a0", "a"))
        sched.submit(spec("a1", "a"))
        assert sched.next_job().spec.id == "a0"
        sched.submit(spec("b0", "b"))
        assert [sched.next_job().spec.id for _ in range(2)] \
            == ["a1", "b0"]

    def test_drain_reports_dropped(self):
        sched = FairScheduler(max_queued=8)
        sched.submit(spec("a0", "a"))
        sched.submit(spec("b0", "b"))
        assert sched.drain() == {"a": 1, "b": 1}
        assert sched.depth == 0
        assert sched.next_job() is None


class TestRetryAfter:
    def test_scales_with_backlog_and_job_time(self):
        sched = FairScheduler(max_queued=64, max_queued_per_tenant=64)
        for _ in range(4):
            sched.observe_seconds(10.0)
        for i in range(5):
            sched.submit(spec("j%d" % i, "a"))
        assert sched.retry_after() > 5.0

    def test_clamped_to_sane_range(self):
        sched = FairScheduler(max_queued=64)
        assert 1.0 <= sched.retry_after() <= 60.0
        for _ in range(10):
            sched.observe_seconds(1000.0)
        for i in range(30):
            sched.submit(spec("j%d" % i, "t%d" % i))
        assert sched.retry_after() == 60.0
