"""Shared fixtures: running service instances and canned requests.

Servers run on a private event loop in a daemon thread
(``start_background``), bound to an ephemeral port, with spawn worker
processes — the real deployment shape, not a mock.  The module-scoped
``server`` amortizes worker spawn across the read-mostly tests;
scenario tests (fairness, backpressure, restart) build their own.
"""

import asyncio

import pytest

from repro.generators.paper_examples import figure1
from repro.serve.client import ServeClient
from repro.serve.protocol import pair_to_request
from repro.serve.server import EquivalenceServer, ServeConfig


def figure1_request(tenant="anon", **options):
    spec, partial = figure1()
    return pair_to_request(spec, partial, tenant=tenant, **options)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve")
    instance = EquivalenceServer(ServeConfig(
        jobs=1, cache_dir=str(root / "cache"),
        journal=str(root / "jobs.jsonl")))
    host, port = instance.start_background()
    yield instance
    instance.stop_background()


@pytest.fixture(scope="module")
def client(server):
    host, port = server.address
    return ServeClient(host, port, timeout=120.0)


class SlotBlocker:
    """Occupy executor slots so submissions pile up in the scheduler.

    Acquiring every slot from the outside makes queue-shape tests
    deterministic: nothing dispatches until :meth:`release`, however
    fast the checks are.
    """

    def __init__(self, server):
        self._server = server
        self._pools = []

    def block(self, count=None):
        loop = self._server._thread_loop
        count = self._server.config.jobs if count is None else count
        for _ in range(count):
            future = asyncio.run_coroutine_threadsafe(
                self._server._executor.acquire(), loop)
            self._pools.append(future.result(30))

    def release(self):
        loop = self._server._thread_loop
        pools, self._pools = self._pools, []

        def _release():
            for pool in pools:
                self._server._executor.release(pool)
            self._server._work.set()

        asyncio.run_coroutine_threadsafe(
            asyncio.sleep(0), loop).result(30)
        loop.call_soon_threadsafe(_release)
