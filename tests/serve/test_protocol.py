"""Protocol-layer tests: validation, netlist round trip, lint gate."""

import json

import pytest

from repro.core.ladder import CHECK_ORDER
from repro.generators.paper_examples import figure1
from repro.serve.protocol import (ProtocolError, load_pair,
                                  pair_to_request, parse_submit)


def submit_body(**overrides):
    spec, partial = figure1()
    request = pair_to_request(spec, partial, tenant="alice")
    request.update(overrides)
    return json.dumps(request).encode("utf-8")


class TestParseSubmit:
    def test_happy_path(self):
        fields = parse_submit(submit_body(patterns=32, seed=7))
        assert fields["tenant"] == "alice"
        assert fields["fmt"] == "blif"
        assert fields["patterns"] == 32
        assert fields["seed"] == 7
        assert fields["checks"] == CHECK_ORDER
        assert fields["boxes"][0]["name"]

    def test_defaults_apply(self):
        fields = parse_submit(submit_body(),
                              defaults={"patterns": 123})
        assert fields["patterns"] == 123
        assert fields["preflight"] is False

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError) as err:
            parse_submit(b"\xff\xfenot json")
        assert err.value.status == 400

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            parse_submit(b"[1, 2]")

    def test_rejects_missing_netlists(self):
        with pytest.raises(ProtocolError) as err:
            parse_submit(b'{"tenant": "a", "spec": "x"}')
        assert "impl" in str(err.value)

    def test_rejects_unknown_format(self):
        with pytest.raises(ProtocolError) as err:
            parse_submit(submit_body(format="verilog"))
        assert "verilog" in str(err.value)

    def test_rejects_unknown_check(self):
        with pytest.raises(ProtocolError) as err:
            parse_submit(submit_body(checks=["quantum"]))
        assert err.value.status == 400

    def test_checks_canonicalized_to_ladder_order(self):
        fields = parse_submit(submit_body(
            checks=["input_exact", "random_pattern"]))
        assert fields["checks"] == ("random_pattern", "input_exact")

    def test_rejects_bad_patterns(self):
        with pytest.raises(ProtocolError):
            parse_submit(submit_body(patterns=0))
        with pytest.raises(ProtocolError):
            parse_submit(submit_body(patterns="many"))

    def test_rejects_malformed_boxes(self):
        with pytest.raises(ProtocolError):
            parse_submit(submit_body(boxes=[{"name": "BB1"}]))
        with pytest.raises(ProtocolError):
            parse_submit(submit_body(boxes=["BB1"]))


class TestLoadPair:
    def test_round_trips_figure1(self):
        spec0, partial0 = figure1()
        fields = parse_submit(submit_body())
        spec, partial = load_pair(fields)
        assert sorted(spec.outputs) == sorted(spec0.outputs)
        assert [b.name for b in partial.boxes] \
            == [b.name for b in partial0.boxes]
        assert sorted(partial.circuit.free_nets()) \
            == sorted(partial0.circuit.free_nets())

    def test_incomplete_spec_rejected(self):
        fields = parse_submit(submit_body())
        # 'h' is referenced but never driven: an incomplete spec.
        fields["spec_text"] = (".model s\n.inputs a\n.outputs f\n"
                               ".names a h f\n11 1\n.end\n")
        with pytest.raises(ProtocolError) as err:
            load_pair(fields)
        assert err.value.status == 400
        assert "spec" in str(err.value)

    def test_unparsable_impl_rejected(self):
        fields = parse_submit(submit_body())
        fields["impl_text"] = ".model broken\n.wat\n.end\n"
        with pytest.raises(ProtocolError) as err:
            load_pair(fields)
        assert err.value.status == 400

    def test_lint_failure_carries_diagnostics(self):
        # The impl reads a net nothing drives and no Black Box
        # produces: lint rule B002, reported as structured diagnostics.
        fields = parse_submit(submit_body(boxes=[]))
        fields["spec_text"] = (".model s\n.inputs a\n.outputs f\n"
                               ".names a f\n1 1\n.end\n")
        fields["impl_text"] = (".model i\n.inputs a\n.outputs f\n"
                               ".names a h f\n11 1\n.end\n")
        with pytest.raises(ProtocolError) as err:
            load_pair(fields)
        assert err.value.status == 400
        assert err.value.diagnostics
        body = err.value.body()
        assert body["diagnostics"] == err.value.diagnostics
        rule_ids = {d["rule"] for d in err.value.diagnostics}
        assert "B002" in rule_ids, rule_ids
