"""Client-side retry: deterministic backoff honoring retry_after.

Pure unit tests — the transport is stubbed at ``_request`` (or
``_connect`` for the stream path) and the sleep is injected, so each
test asserts the *exact* retry schedule the seeded jitter produces.
"""

import pytest

from repro.resilience import BackoffPolicy
from repro.serve.client import ServeClient, ServeError


def _client(**kwargs):
    sleeps = []
    client = ServeClient("127.0.0.1", 1, sleep=sleeps.append,
                         **kwargs)
    return client, sleeps


def _script(client, outcomes):
    """Replace the transport with a canned outcome sequence."""
    calls = []

    def fake_request(method, path, payload=None):
        calls.append((method, path))
        outcome = outcomes[min(len(calls), len(outcomes)) - 1]
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    client._request = fake_request
    return calls


def _throttle(retry_after=None):
    body = {"error": "busy"}
    if retry_after is not None:
        body["retry_after"] = retry_after
    return ServeError(429, "busy", body)


class TestSubmitRetry:
    def test_retries_429_until_success(self):
        client, sleeps = _client()
        calls = _script(client, [_throttle(), _throttle(),
                                 {"id": "j1"}])
        assert client.submit({"tenant": "t"}) == {"id": "j1"}
        assert len(calls) == 3
        assert sleeps == [client.backoff.delay(1),
                          client.backoff.delay(2)]

    def test_retry_after_floors_the_delay(self):
        client, sleeps = _client()
        _script(client, [_throttle(retry_after=1.5), {"id": "j1"}])
        client.submit({"tenant": "t"})
        assert sleeps == [client.backoff.delay(1, floor=1.5)]
        assert sleeps[0] >= 1.5

    def test_gives_up_after_max_retries(self):
        client, sleeps = _client(max_retries=2)
        calls = _script(client, [_throttle()])
        with pytest.raises(ServeError) as err:
            client.submit({"tenant": "t"})
        assert err.value.status == 429
        assert len(calls) == 3  # initial + 2 retries
        assert len(sleeps) == 2

    def test_max_retries_zero_fails_fast(self):
        client, sleeps = _client(max_retries=0)
        calls = _script(client, [_throttle()])
        with pytest.raises(ServeError):
            client.submit({"tenant": "t"})
        assert len(calls) == 1
        assert sleeps == []

    def test_client_errors_are_never_retried(self):
        client, sleeps = _client()
        calls = _script(client, [ServeError(400, "bad netlist",
                                            {"diagnostics": []})])
        with pytest.raises(ServeError) as err:
            client.submit({"tenant": "t"})
        assert err.value.status == 400
        assert len(calls) == 1 and sleeps == []

    def test_protocol_errors_are_never_retried(self):
        # status 0 covers transport-level ServeErrors (malformed
        # response, oversized body) — retrying cannot help those.
        client, sleeps = _client()
        calls = _script(client, [ServeError(0, "malformed")])
        with pytest.raises(ServeError):
            client.submit({"tenant": "t"})
        assert len(calls) == 1 and sleeps == []

    def test_connection_errors_are_retried(self):
        client, sleeps = _client()
        calls = _script(client, [ConnectionRefusedError(),
                                 {"id": "j1"}])
        assert client.submit({"tenant": "t"}) == {"id": "j1"}
        assert len(calls) == 2
        assert sleeps == [client.backoff.delay(1)]

    def test_schedule_is_deterministic_per_seed(self):
        a, sleeps_a = _client()
        b, sleeps_b = _client()
        for client in (a, b):
            _script(client, [_throttle(retry_after=0.2), _throttle(),
                             {"id": "j1"}])
            client.submit({"tenant": "t"})
        assert sleeps_a == sleeps_b
        other, _ = _client(backoff=BackoffPolicy(seed=99))
        assert other.backoff.delay(1) != a.backoff.delay(1)


class TestWaitRetry:
    def test_wait_polls_through_transient_503(self):
        client, sleeps = _client()
        _script(client, [ServeError(503, "restarting",
                                    {"retry_after": 0.1}),
                         {"status": "running", "id": "j1"},
                         {"status": "done", "id": "j1"}])
        final = client.wait("j1", timeout=30, poll_interval=0)
        assert final["status"] == "done"
        assert sleeps[0] == client.backoff.delay(1, floor=0.1)


class TestStreamRetry:
    def test_stream_does_not_retry_by_default(self):
        client, sleeps = _client()
        attempts = []

        def refuse():
            attempts.append(1)
            raise ConnectionRefusedError()

        client._connect = refuse
        with pytest.raises(OSError):
            list(client.stream("j1"))
        assert len(attempts) == 1 and sleeps == []

    def test_stream_retries_connection_when_asked(self):
        client, sleeps = _client()
        attempts = []

        def refuse():
            attempts.append(1)
            raise ConnectionRefusedError()

        client._connect = refuse
        with pytest.raises(OSError):
            list(client.stream("j1", max_retries=2))
        assert len(attempts) == 3
        assert sleeps == [client.backoff.delay(1),
                          client.backoff.delay(2)]
