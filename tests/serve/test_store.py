"""JobStore tests: replay semantics and journal robustness.

The kill-mid-job contract is proved here at the layer that owns it: a
``start`` event without a matching ``done`` is exactly what a server
killed mid-job leaves behind, and replay must classify it as ``lost``
— never silently re-run, never reported as complete.
"""

import json

from repro.serve.executor import JobRecord, JobSpec
from repro.serve.store import STORE_VERSION, JobStore


def spec(job_id, tenant="a"):
    return JobSpec(id=job_id, tenant=tenant, fmt="blif",
                   spec_text=".model s\n.end\n",
                   impl_text=".model i\n.end\n", boxes=(),
                   checks=("random_pattern",), patterns=8, seed=3)


def record(job_id):
    return JobRecord(id=job_id, outcome="ok", exact=True,
                     checks=[{"check": "random_pattern",
                              "outcome": "ok", "cached": False}],
                     seconds=0.25)


class TestReplay:
    def test_empty_or_missing_journal(self, tmp_path):
        assert JobStore.replay(None) == []
        assert JobStore.replay(str(tmp_path / "absent.jsonl")) == []

    def test_lifecycle_classification(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        store = JobStore(path)
        store.record_submit(spec("queued-1"), 1)
        store.record_submit(spec("lost-2"), 2)
        store.record_start("lost-2")
        store.record_submit(spec("done-3"), 3)
        store.record_start("done-3")
        store.record_done("done-3", record("done-3"))
        store.close()

        replayed = {j.spec.id: j for j in JobStore.replay(path)}
        assert replayed["queued-1"].status == "queued"
        assert replayed["lost-2"].status == "lost"
        assert replayed["done-3"].status == "done"
        assert replayed["done-3"].record.exact is True
        assert replayed["queued-1"].spec.patterns == 8
        assert JobStore.max_seq(list(replayed.values())) == 3

    def test_kill_mid_job_is_lost_not_rerun(self, tmp_path):
        # The journal a crashed server leaves behind: started, no done.
        path = str(tmp_path / "jobs.jsonl")
        store = JobStore(path)
        store.record_submit(spec("j1"), 1)
        store.record_start("j1")
        store.close()
        (replayed,) = JobStore.replay(path)
        assert replayed.status == "lost"

    def test_torn_tail_and_junk_tolerated(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(str(path))
        store.record_submit(spec("j1"), 1)
        store.record_done("j1", record("j1"))
        store.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"v": STORE_VERSION,
                                     "ev": "wormhole",
                                     "job": "j1"}) + "\n")
            handle.write(json.dumps({"v": 99, "ev": "submit",
                                     "job": "future"}) + "\n")
            handle.write('{"v": 1, "ev": "submit", "job": "torn')
        (replayed,) = JobStore.replay(str(path))
        assert replayed.spec.id == "j1"
        assert replayed.status == "done"

    def test_events_for_unknown_jobs_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"v": STORE_VERSION, "ev": "start",
                                     "job": "ghost"}) + "\n")
            handle.write(json.dumps({"v": STORE_VERSION, "ev": "done",
                                     "job": "ghost",
                                     "record": {}}) + "\n")
        assert JobStore.replay(str(path)) == []


class TestInertStore:
    def test_none_path_is_noop(self):
        store = JobStore(None)
        store.record_submit(spec("j1"), 1)
        store.record_start("j1")
        store.record_done("j1", record("j1"))
        store.close()
        assert store.write_errors == 0
