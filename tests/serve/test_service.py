"""End-to-end service tests over real HTTP against real workers.

Every test here talks to an :class:`EquivalenceServer` bound to an
ephemeral port, through :class:`ServeClient` — the full production
path: socket, hand-rolled HTTP, scheduler, spawn worker, journal,
check cache.
"""

import json
import time

import pytest

from repro.core.ladder import CHECK_ORDER
from repro.generators.benchmarks import BENCHMARK_FACTORIES
from repro.generators import alu4_like
from repro.partial.extraction import make_partial
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import pair_to_request
from repro.serve.server import EquivalenceServer, ServeConfig

from .conftest import SlotBlocker, figure1_request


def wait_status(client, job_id, status, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        view = client.job(job_id)
        if view["status"] == status:
            return view
        time.sleep(0.02)
    raise AssertionError("job %s never reached %r (last: %r)"
                         % (job_id, status, view["status"]))


class TestHappyPath:
    def test_submit_poll_verdict(self, client):
        job = client.submit(figure1_request(tenant="alice"))
        assert job["status"] == "queued"
        assert job["id"].startswith("j")
        final = client.wait(job["id"], timeout=120)
        assert final["status"] == "done"
        result = final["result"]
        assert result["outcome"] == "ok"
        verdict = final["verdict"]
        assert verdict["refuted"] is False
        # Two Black Boxes: the input-exact rung is an approximation,
        # so the verdict is "no error found", not "exact".
        assert verdict["exact"] is False
        assert [c["check"] for c in verdict["checks"]] \
            == list(CHECK_ORDER)

    def test_event_stream_reaches_done(self, client):
        job = client.submit(figure1_request(tenant="alice"))
        events = list(client.stream(job["id"]))
        kinds = [e["ev"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "done"
        assert "started" in kinds
        assert all(e["job"] == job["id"] for e in events)

    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["slots"]["total"] == 1
        assert health["protocol"] == 1

    def test_stats_counts_traffic(self, client):
        before = client.stats()
        client.wait(client.submit(figure1_request(tenant="carol"))
                    ["id"], timeout=120)
        after = client.stats()
        assert after["jobs"]["submitted"] \
            > before["jobs"]["submitted"]
        assert after["tenants"]["carol"]["completed"] >= 1
        assert "entries" in after["cache"]
        assert "bytes" in after["cache"]

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client.job("j999999-deadbeef")
        assert err.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client._request("GET", "/v2/nope")
        assert err.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServeError) as err:
            client._request("GET", "/v1/jobs", None)
        assert err.value.status == 405

    def test_malformed_netlist_is_400_with_diagnostics(self, client):
        request = figure1_request(tenant="alice")
        request["boxes"] = []
        # The impl reads a net nothing drives and no Black Box
        # produces: lint rule B002.
        request["spec"] = (".model s\n.inputs a\n.outputs f\n"
                           ".names a f\n1 1\n.end\n")
        request["impl"] = (".model i\n.inputs a\n.outputs f\n"
                           ".names a h f\n11 1\n.end\n")
        with pytest.raises(ServeError) as err:
            client.submit(request)
        assert err.value.status == 400
        assert err.value.diagnostics, err.value.body
        assert any(d["severity"] == "error"
                   for d in err.value.diagnostics)

    def test_invalid_json_is_400(self, client):
        with pytest.raises(ServeError) as err:
            client._request("POST", "/v1/jobs", {"tenant": 7})
        assert err.value.status == 400


class TestWarmCache:
    def test_resubmission_replays_byte_identical(self, client,
                                                 server):
        # A pair unique to this test, so the first run is cold even
        # though the module server's cache is shared.
        spec = alu4_like()
        partial = make_partial(spec, fraction=0.1, seed=11)
        request = pair_to_request(spec, partial, tenant="alice",
                                  patterns=256, seed=11)

        cold = client.wait(client.submit(request)["id"], timeout=240)
        warm = client.wait(client.submit(request)["id"], timeout=240)

        assert cold["result"]["cached"] is False
        assert warm["result"]["cached"] is True
        assert all(c["cached"] for c in warm["result"]["checks"])
        # The verdict replays byte-for-byte, including each check's
        # originally measured seconds.
        assert json.dumps(cold["verdict"], sort_keys=True) \
            == json.dumps(warm["verdict"], sort_keys=True)
        # ... and the replay is measurably faster than the cold proof.
        assert warm["result"]["seconds"] < cold["result"]["seconds"]
        stats = client.stats()
        assert stats["cache"]["hits"] >= len(CHECK_ORDER)
        assert stats["cache"]["entries"] >= len(CHECK_ORDER)


class TestFairness:
    def test_two_tenants_interleave_with_no_starvation(self, tmp_path):
        server = EquivalenceServer(ServeConfig(jobs=1, queue=64,
                                               tenant_queue=32))
        host, port = server.start_background()
        client = ServeClient(host, port, timeout=120.0)
        blocker = SlotBlocker(server)
        try:
            blocker.block()
            # Worst-case arrival order: tenant a's whole burst first.
            request = figure1_request(
                checks=["random_pattern"], patterns=32, seed=1)
            ids = {}
            for tenant in ("alice", "bob"):
                for i in range(8):
                    submission = dict(request, tenant=tenant)
                    ids[client.submit(submission)["id"]] = tenant
            assert len(ids) == 16
            blocker.release()
            views = {job_id: client.wait(job_id, timeout=120)
                     for job_id in ids}
            assert all(v["status"] == "done"
                       and v["result"]["outcome"] == "ok"
                       for v in views.values())
            # Reconstruct dispatch order; fair-share must alternate
            # tenants even though all of alice's jobs arrived first.
            order = [ids[job_id] for job_id, _ in
                     sorted(views.items(),
                            key=lambda kv: kv[1]["dispatch_seq"])]
            for k in range(1, len(order) + 1):
                a = order[:k].count("alice")
                b = order[:k].count("bob")
                assert abs(a - b) <= 1, order
        finally:
            server.stop_background()


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self, tmp_path):
        server = EquivalenceServer(ServeConfig(jobs=1, queue=4,
                                               tenant_queue=2))
        host, port = server.start_background()
        # This test probes the 429s themselves, so the client's
        # automatic backpressure retries must stay out of the way.
        client = ServeClient(host, port, timeout=120.0, max_retries=0)
        blocker = SlotBlocker(server)
        try:
            blocker.block()
            request = figure1_request(
                checks=["random_pattern"], patterns=32, seed=1)
            accepted = []
            for tenant in ("alice", "alice", "bob", "bob"):
                submission = dict(request, tenant=tenant)
                accepted.append(client.submit(submission)["id"])
            # Tenant bound: alice already holds 2 of the 4 slots.
            with pytest.raises(ServeError) as err:
                client.submit(dict(request, tenant="alice"))
            assert err.value.status == 429
            assert err.value.retry_after >= 1.0
            # Global bound: the queue itself is full now.
            with pytest.raises(ServeError) as err:
                client.submit(dict(request, tenant="dave"))
            assert err.value.status == 429
            stats = client.stats()
            assert stats["jobs"]["rejected_queue_full"] == 2
            blocker.release()
            for job_id in accepted:
                final = client.wait(job_id, timeout=120)
                assert final["status"] == "done"
        finally:
            server.stop_background()


class TestRestart:
    def test_done_and_queued_jobs_survive_graceful_restart(
            self, tmp_path):
        journal = str(tmp_path / "jobs.jsonl")
        request = figure1_request(tenant="alice",
                                  checks=["random_pattern"],
                                  patterns=32, seed=1)

        first = EquivalenceServer(ServeConfig(jobs=1, journal=journal))
        host, port = first.start_background()
        client = ServeClient(host, port, timeout=120.0)
        done = client.wait(client.submit(request)["id"], timeout=120)
        blocker = SlotBlocker(first)
        blocker.block()
        queued_ids = [client.submit(dict(request, seed=seed))["id"]
                      for seed in (2, 3)]
        first.stop_background()  # graceful: queued jobs never started

        second = EquivalenceServer(ServeConfig(jobs=1,
                                               journal=journal))
        host, port = second.start_background()
        client = ServeClient(host, port, timeout=120.0)
        try:
            # The completed job is served from the journal...
            replayed = client.job(done["id"])
            assert replayed["status"] == "done"
            assert replayed["verdict"] == done["verdict"]
            # ... the queued ones resume and finish...
            for job_id in queued_ids:
                final = client.wait(job_id, timeout=120)
                assert final["status"] == "done"
                assert final["result"]["outcome"] == "ok"
            # ... and id allocation continues past the journal.
            fresh = client.submit(dict(request, seed=9))
            seqs = [int(job_id.split("-")[0][1:])
                    for job_id in (done["id"], fresh["id"])]
            assert seqs[1] > seqs[0]
        finally:
            second.stop_background()

    def test_killed_mid_job_reported_lost_after_restart(
            self, tmp_path):
        journal = str(tmp_path / "jobs.jsonl")
        spec = BENCHMARK_FACTORIES["C880"]()
        partial = make_partial(spec, fraction=0.2, seed=1)
        # input_exact on C880 takes long enough that the abort lands
        # mid-proof (the worker is SIGKILLed).
        request = pair_to_request(spec, partial, tenant="alice",
                                  checks=["input_exact"])

        first = EquivalenceServer(ServeConfig(jobs=1, journal=journal))
        host, port = first.start_background()
        client = ServeClient(host, port, timeout=120.0)
        job = client.submit(request)
        wait_status(client, job["id"], "running")
        first.stop_background(abort=True)

        second = EquivalenceServer(ServeConfig(jobs=1,
                                               journal=journal))
        host, port = second.start_background()
        client = ServeClient(host, port, timeout=120.0)
        try:
            view = client.job(job["id"])
            assert view["status"] == "lost"
            assert "resubmit" in view["detail"]
            events = list(client.stream(job["id"]))
            assert events[-1]["ev"] == "lost"
        finally:
            second.stop_background()

    def test_replay_honors_admission_caps(self, tmp_path):
        # A journal holding more queued jobs than the restarted
        # server's --queue allows (caps lowered across the restart)
        # must not overshoot them: the overflow is durably lost, not
        # silently admitted.
        journal = str(tmp_path / "jobs.jsonl")
        tenants = ["alice", "bob", "carol", "dave"]
        first = EquivalenceServer(ServeConfig(jobs=1, queue=8,
                                              journal=journal))
        host, port = first.start_background()
        client = ServeClient(host, port, timeout=120.0)
        blocker = SlotBlocker(first)
        blocker.block()
        queued_ids = [client.submit(
            figure1_request(tenant=tenant, checks=["random_pattern"],
                            patterns=32, seed=1))["id"]
            for tenant in tenants]
        first.stop_background()

        # Replay runs synchronously inside start(), in journal order:
        # the first two re-admit, the rest hit QueueFull.
        second = EquivalenceServer(ServeConfig(jobs=1, queue=2,
                                               tenant_queue=2,
                                               journal=journal))
        host, port = second.start_background()
        client = ServeClient(host, port, timeout=120.0)
        try:
            for job_id in queued_ids[:2]:
                assert client.wait(job_id,
                                   timeout=120)["status"] == "done"
            for job_id in queued_ids[2:]:
                view = client.job(job_id)
                assert view["status"] == "lost"
                assert "queue full" in view["detail"]
                assert "resubmit" in view["detail"]
        finally:
            second.stop_background()

        # The loss is journaled: a third restart with roomy caps must
        # not resurrect the dropped jobs — their clients were already
        # told to resubmit, so re-running them would execute twice.
        third = EquivalenceServer(ServeConfig(jobs=1, queue=8,
                                              journal=journal))
        host, port = third.start_background()
        client = ServeClient(host, port, timeout=120.0)
        try:
            for job_id in queued_ids[2:]:
                assert client.job(job_id)["status"] == "lost"
        finally:
            third.stop_background()


class TestServiceTracing:
    def test_trace_groups_by_tenant(self, tmp_path):
        from repro.obs import read_jsonl
        from repro.obs.summary import aggregate_spans, format_summary

        trace = str(tmp_path / "serve.trace.jsonl")
        server = EquivalenceServer(ServeConfig(jobs=1,
                                               trace_path=trace))
        host, port = server.start_background()
        client = ServeClient(host, port, timeout=120.0)
        request = figure1_request(checks=["random_pattern"],
                                  patterns=32, seed=1)
        for tenant in ("alice", "bob"):
            client.wait(client.submit(dict(request, tenant=tenant))
                        ["id"], timeout=120)
        server.stop_background()

        events = read_jsonl(trace)
        assert any(e["ph"] == "i" and e["name"] == "http"
                   for e in events)
        table = aggregate_spans(events, group_by="tenant")
        assert "tenant=alice/job" in table
        assert "tenant=bob/job" in table
        assert table["tenant=alice/job"]["count"] == 1
        rendered = format_summary(events, top=20, group_by="tenant")
        assert "tenant=bob/job:execute" in rendered


class TestCli:
    def test_parser_flags(self):
        from repro.serve.__main__ import build_parser

        args = build_parser().parse_args(
            ["--port", "0", "--jobs", "3", "--queue", "9",
             "--cache-dir", "/tmp/c", "--journal", "/tmp/j.jsonl",
             "--timeout", "12", "--preflight", "--trace",
             "/tmp/t.jsonl"])
        assert args.port == 0
        assert args.jobs == 3
        assert args.queue == 9
        assert args.cache_dir == "/tmp/c"
        assert args.journal == "/tmp/j.jsonl"
        assert args.timeout == 12.0
        assert args.preflight is True
        assert args.trace_path == "/tmp/t.jsonl"
