"""Ternary preflight: verdicts, restriction and no-BDD discharge."""

import pytest

from repro.analysis.static import preflight
from repro.analysis.static.preflight import (STATUS_EQUIVALENT,
                                             STATUS_MISMATCH,
                                             STATUS_MITER, STATUS_OPEN,
                                             restrict_to_outputs)
from repro.circuit import GateType
from repro.circuit.netlist import Circuit
from repro.core.ladder import run_ladder
from repro.generators.paper_examples import ALL_FIGURES, figure1
from repro.partial.blackbox import BlackBox, PartialImplementation


def _pair_with_discharged_cone():
    """A two-output pair: output 0 is box-free and hash-equal to the
    spec (statically discharged), output 1 depends on a box (open)."""
    spec = Circuit("spec")
    spec.add_inputs(["a", "b", "c"])
    spec.add_gate("f", GateType.AND, ["a", "b"])
    spec.add_gate("g", GateType.OR, ["f", "c"])
    spec.add_outputs(["f", "g"])

    impl = Circuit("impl")
    impl.add_inputs(["a", "b", "c"])
    impl.add_gate("f", GateType.AND, ["b", "a"])   # commuted: same cone
    impl.add_gate("g", GateType.OR, ["z", "c"])    # z: box output
    impl.add_outputs(["f", "g"])
    box = BlackBox("BB", ("a", "b"), ("z",))
    return spec, PartialImplementation(impl, [box])


class TestVerdicts:
    def test_discharged_and_open(self):
        spec, partial = _pair_with_discharged_cone()
        report = preflight(spec, partial)
        statuses = [v.status for v in report.verdicts]
        assert statuses == [STATUS_EQUIVALENT, STATUS_OPEN]
        assert report.discharged == (0,)
        assert report.open_indices == (1,)
        assert not report.all_discharged
        assert report.mismatch is None

    def test_constant_mismatch_yields_counterexample(self):
        spec = Circuit("spec")
        spec.add_input("a")
        spec.add_gate("na", GateType.NOT, ["a"])
        spec.add_gate("f", GateType.OR, ["a", "na"])   # constant 1
        spec.add_output("f")
        impl = Circuit("impl")
        impl.add_input("a")
        impl.add_gate("na", GateType.NOT, ["a"])
        impl.add_gate("f", GateType.AND, ["a", "na"])  # constant 0
        impl.add_output("f")
        partial = PartialImplementation(impl, [])
        report = preflight(spec, partial)
        verdict = report.mismatch
        assert verdict is not None and verdict.status == STATUS_MISMATCH
        assert report.counterexample is not None
        # the witness really exposes the error
        assert spec.evaluate(report.counterexample)["f"] \
            != impl.evaluate(report.counterexample)["f"]

    def test_box_free_difference_routes_to_miter(self):
        spec = Circuit("spec")
        spec.add_inputs(["a", "b"])
        spec.add_gate("f", GateType.AND, ["a", "b"])
        spec.add_output("f")
        impl = Circuit("impl")
        impl.add_inputs(["a", "b"])
        impl.add_gate("f", GateType.OR, ["a", "b"])
        impl.add_output("f")
        report = preflight(spec, PartialImplementation(impl, []))
        assert [v.status for v in report.verdicts] == [STATUS_MITER]
        assert report.box_free

    def test_unobservable_box_reported(self):
        spec = Circuit("spec")
        spec.add_inputs(["a", "b"])
        spec.add_gate("f", GateType.AND, ["a", "b"])
        spec.add_output("f")
        impl = Circuit("impl")
        impl.add_inputs(["a", "b"])
        impl.add_gate("f", GateType.AND, ["a", "b"])
        impl.add_output("f")
        dead = BlackBox("DEAD", ("a",), ("unused",))
        report = preflight(spec, PartialImplementation(impl, [dead]))
        assert report.unobservable_boxes == ("DEAD",)
        assert report.all_discharged

    def test_figure_pairs_classify_without_error(self):
        for name, (factory, _expected) in ALL_FIGURES.items():
            spec, partial = factory()
            report = preflight(spec, partial)
            assert len(report.verdicts) == len(spec.outputs)
            assert report.mismatch is None, name


class TestRestriction:
    def test_keeps_full_input_interface(self):
        spec, partial = _pair_with_discharged_cone()
        report = preflight(spec, partial)
        spec_r, partial_r = restrict_to_outputs(spec, partial,
                                                report.open_indices)
        assert spec_r.inputs == spec.inputs
        assert partial_r.circuit.inputs == partial.circuit.inputs
        assert list(spec_r.outputs) == ["g"]
        assert [b.name for b in partial_r.boxes] == ["BB"]
        partial_r.validate_against(spec_r)

    def test_drops_boxes_outside_kept_cones(self):
        spec, partial = _pair_with_discharged_cone()
        # keep only the discharged box-free output: the box must go
        spec_r, partial_r = restrict_to_outputs(spec, partial, [0])
        assert partial_r.boxes == []
        assert list(spec_r.outputs) == ["f"]


class TestLadderIntegration:
    def test_full_discharge_never_builds_a_bdd(self, monkeypatch):
        spec = Circuit("s")
        spec.add_inputs(["a", "b"])
        spec.add_gate("f", GateType.AND, ["a", "b"])
        spec.add_output("f")
        impl = Circuit("i")
        impl.add_inputs(["a", "b"])
        impl.add_gate("f", GateType.AND, ["b", "a"])
        impl.add_output("f")
        partial = PartialImplementation(
            impl, [BlackBox("BB", ("a",), ("z",))])

        def boom(backend=None):
            raise AssertionError("a BDD manager was constructed")

        from repro.bdd import backends as backends_mod
        monkeypatch.setattr(backends_mod, "default_bdd_for_backend",
                            boom)
        results = run_ladder(spec, partial, preflight=True)
        assert len(results) == 1
        assert results[0].check == "preflight"
        assert results[0].exact and not results[0].error_found

    def test_static_mismatch_short_circuits_with_witness(self):
        spec = Circuit("s")
        spec.add_input("a")
        spec.add_gate("na", GateType.NOT, ["a"])
        spec.add_gate("f", GateType.OR, ["a", "na"])
        spec.add_output("f")
        impl = Circuit("i")
        impl.add_input("a")
        impl.add_gate("na", GateType.NOT, ["a"])
        impl.add_gate("f", GateType.AND, ["a", "na"])
        impl.add_output("f")
        results = run_ladder(spec, PartialImplementation(impl, []),
                             preflight=True)
        assert len(results) == 1
        result = results[0]
        assert result.check == "preflight" and result.error_found
        assert result.counterexample is not None
        assert result.failing_output == "f"

    def test_preflight_preserves_figure_verdicts(self):
        for name, (factory, _expected) in ALL_FIGURES.items():
            spec, partial = factory()
            base = run_ladder(spec, partial, stop_at_first_error=False)
            with_pf = run_ladder(spec, partial,
                                 stop_at_first_error=False,
                                 preflight=True)
            base_verdicts = [(r.check, r.error_found) for r in base
                             if r.check != "preflight"]
            pf_verdicts = [(r.check, r.error_found) for r in with_pf
                           if r.check != "preflight"]
            # the preflight may legitimately stop the ladder early
            # (exact miter / full discharge), never change a verdict
            assert pf_verdicts == base_verdicts[:len(pf_verdicts)], name

    def test_discharges_a_cone_on_paper_example_spec(self):
        # Acceptance: on the paper's Figure 1 specification (f1 =
        # x2·x3 + x4·x5, f2 = x4·x5 + x6), boxing only f2's cone
        # leaves f1's cone identical — the preflight discharges it
        # statically and the ladder only ever checks the f2 pair.
        spec, _ = figure1()
        impl = Circuit("fig1_partial")
        impl.add_inputs(spec.inputs)
        for gate in spec.gates:
            if gate.output != spec.outputs[1]:
                impl.add_gate(gate.output, gate.gtype, gate.inputs)
        impl.add_gate(spec.outputs[1], GateType.BUF, ["z"])
        impl.add_outputs(spec.outputs)
        t45 = spec.gate(spec.outputs[1]).inputs[0]
        partial = PartialImplementation(
            impl, [BlackBox("BB", (t45, "x6"), ("z",))])
        report = preflight(spec, partial)
        assert len(report.discharged) >= 1
        assert report.verdicts[0].status == STATUS_EQUIVALENT
        assert report.verdicts[1].status == STATUS_OPEN
        results = run_ladder(spec, partial, stop_at_first_error=False,
                             preflight=True)
        assert all(r.stats.get("static_discharged") == 1
                   for r in results)
        assert not any(r.error_found for r in results)

    def test_partial_discharge_restricts_run(self):
        spec, partial = _pair_with_discharged_cone()
        results = run_ladder(spec, partial, stop_at_first_error=False,
                             preflight=True)
        assert all(r.stats.get("static_discharged") == 1
                   for r in results)
        assert all(not r.error_found for r in results)


class TestValidation:
    def test_interface_mismatch_raises(self):
        spec, partial = _pair_with_discharged_cone()
        bad = Circuit("bad")
        bad.add_inputs(["a", "b"])
        bad.add_gate("f", GateType.AND, ["a", "b"])
        bad.add_output("f")
        with pytest.raises(Exception):
            preflight(bad, partial)
