"""Property tests: generated circuits lint clean, mutations stay clean.

Two invariants tie the linter to the rest of the library:

1. Every circuit the benchmark generators emit is structurally sound —
   no error-severity finding, ever.
2. The paper's fault model (Section 3 mutations) changes *functions*,
   not *structure*: a mutated circuit still lints without errors, and
   the structural warnings it can introduce are exactly the expected
   ones (``remove_input`` on a 2-input gate leaves a 1-input
   degenerate, for example).
"""

from functools import lru_cache

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import Severity, lint_circuit
from repro.circuit import Circuit, GateType
from repro.generators.benchmarks import BENCHMARK_FACTORIES, \
    BENCHMARK_NAMES
from repro.partial.mutations import Mutation, applicable_mutations, \
    apply_mutation


@lru_cache(maxsize=None)
def _benchmark(name):
    return BENCHMARK_FACTORIES[name]()


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_generator_benchmarks_lint_clean(name):
    report = lint_circuit(_benchmark(name))
    assert report.ok, report.format()


@st.composite
def _random_circuits(draw):
    """Structurally valid random DAG circuits (builder-style)."""
    n_inputs = draw(st.integers(min_value=1, max_value=4))
    circuit = Circuit("random")
    nets = [circuit.add_input("x%d" % i) for i in range(n_inputs)]
    n_gates = draw(st.integers(min_value=1, max_value=12))
    binary = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
              GateType.XOR, GateType.XNOR]
    for index in range(n_gates):
        gtype = draw(st.sampled_from(binary + [GateType.NOT]))
        if gtype is GateType.NOT:
            fanins = [draw(st.sampled_from(nets))]
        else:
            first = draw(st.sampled_from(nets))
            second = draw(st.sampled_from(
                [n for n in nets if n != first] or nets))
            fanins = [first, second]
        nets.append(circuit.add_gate("g%d" % index, gtype, fanins))
    circuit.add_output(nets[-1])
    return circuit


@settings(max_examples=60, deadline=None)
@given(_random_circuits())
def test_random_circuits_have_no_error_findings(circuit):
    report = lint_circuit(circuit)
    assert report.ok, report.format()


@settings(max_examples=40, deadline=None)
@given(_random_circuits(), st.randoms(use_true_random=False))
def test_mutations_never_introduce_error_findings(circuit, rng):
    mutations = applicable_mutations(circuit)
    if not mutations:
        return
    mutated = apply_mutation(circuit, rng.choice(mutations))
    report = lint_circuit(mutated)
    assert report.ok, report.format()


class TestTargetedMutations:
    """Exact rule ids for structure-changing mutations."""

    @staticmethod
    def _and2():
        c = Circuit("and2")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("f", GateType.AND, ["a", "b"])
        c.add_output("f")
        return c

    def test_remove_input_leaves_degenerate_gate(self):
        mutated = apply_mutation(self._and2(),
                                 Mutation("remove_input", "f", pin=0))
        report = lint_circuit(mutated)
        assert report.rule_ids() == ["L006"]
        assert report.by_rule("L006")[0].severity == Severity.WARNING

    def test_invert_output_stays_clean(self):
        mutated = apply_mutation(self._and2(),
                                 Mutation("invert_output", "f"))
        assert len(lint_circuit(mutated)) == 0

    def test_change_gate_type_stays_clean(self):
        mutated = apply_mutation(self._and2(),
                                 Mutation("change_gate_type", "f"))
        assert len(lint_circuit(mutated)) == 0
