"""BDD sanitizer: opt-in invariant checks after GC and reordering."""

import pytest

from repro.analysis.bddcheck import BddInvariantError, \
    enable_debug_checks, sanitize_manager
from repro.bdd import Bdd
from repro.bdd.manager import BddManager, debug_checks_enabled


def _pollute(bdd):
    """Create a few dead nodes so a GC has something to do."""
    x, y, z = bdd.add_vars(["x", "y", "z"])
    keep = (x & y) | z
    for _ in range(5):
        _ = (x ^ y) & z  # dropped immediately -> garbage
    return keep


class TestOptIn:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        assert not debug_checks_enabled()
        assert BddManager().debug_checks is False

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG", "1")
        assert debug_checks_enabled()
        assert BddManager().debug_checks is True
        # Explicit argument still wins over the environment.
        assert BddManager(debug_checks=False).debug_checks is False

    def test_constructor_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        assert Bdd(debug_checks=True).manager.debug_checks is True

    def test_runtime_toggle(self):
        bdd = Bdd()
        enable_debug_checks(bdd)
        assert bdd.manager.debug_checks is True
        enable_debug_checks(bdd, False)
        assert bdd.manager.debug_checks is False


class TestSelfCheckHooks:
    def test_gc_triggers_selfcheck(self):
        bdd = Bdd(debug_checks=True)
        _pollute(bdd)
        before = bdd.manager.n_selfchecks
        bdd.collect_garbage()
        assert bdd.manager.n_selfchecks == before + 1

    def test_reorder_triggers_selfcheck(self):
        bdd = Bdd(debug_checks=True)
        _pollute(bdd)
        before = bdd.manager.n_selfchecks
        bdd.reorder()
        # reorder() garbage-collects first, then sifts: two checks.
        assert bdd.manager.n_selfchecks == before + 2

    def test_no_selfcheck_when_disabled(self):
        bdd = Bdd(debug_checks=False)
        _pollute(bdd)
        bdd.collect_garbage()
        bdd.reorder()
        assert bdd.manager.n_selfchecks == 0


class TestCorruptionDetection:
    @staticmethod
    def _corrupt(bdd, keep):
        """Make a *live* internal node redundant (low == high).

        Corrupting a live node keeps the GC sweep itself functional (it
        only deletes dead nodes by their unique-table key), so the
        corruption is caught by the post-GC self-check, not by an
        accidental crash inside the sweep.
        """
        mgr = bdd.manager
        node = keep.node
        assert mgr._low[node] != mgr._high[node]
        mgr._high[node] = mgr._low[node]

    def test_sanitize_reports_diagnostics(self):
        bdd = Bdd()
        keep = _pollute(bdd)
        self._corrupt(bdd, keep)
        report = sanitize_manager(bdd)
        assert not report.ok
        assert all(d.rule_id == "D001" for d in report)

    def test_gc_raises_invariant_error(self):
        bdd = Bdd(debug_checks=True)
        keep = _pollute(bdd)
        self._corrupt(bdd, keep)
        with pytest.raises(BddInvariantError) as excinfo:
            bdd.collect_garbage()
        assert excinfo.value.phase == "gc"
        assert excinfo.value.diagnostics
        assert excinfo.value.diagnostics[0].rule_id == "D001"

    def test_sanitize_clean_manager_is_empty(self):
        bdd = Bdd()
        _pollute(bdd)
        report = sanitize_manager(bdd)
        assert report.ok
        assert len(report) == 0
        assert bdd.manager.n_selfchecks == 1


class TestBackCompat:
    def test_check_invariants_still_asserts(self):
        bdd = Bdd()
        _pollute(bdd)
        bdd.manager.check_invariants()  # clean: no exception
        mgr = bdd.manager
        node = max(n for n in range(len(mgr._var))
                   if mgr._var[n] >= 0 and mgr._low[n] != mgr._high[n])
        mgr._high[node] = mgr._low[node]
        with pytest.raises(AssertionError):
            bdd.manager.check_invariants()
