"""Canonical cone hashing: invariance and sensitivity properties.

The contract (docs/static-analysis.md): a cone hash is invariant under
net renaming, gate declaration order and inserted buffers, and two
box-free cones with equal hashes compute the same function.  The
sensitivity direction is checked semantically — a mutation that
actually changes the function must change the hash (hash equality
implies equivalence, so this is just the contrapositive, but we assert
it against the BDD checker to keep the two engines honest).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.static import cone_hashes, circuit_digest
from repro.circuit import CircuitBuilder, GateType
from repro.circuit.netlist import Circuit
from repro.core import check_equivalence
from repro.generators.paper_examples import ALL_FIGURES
from repro.partial.blackbox import BlackBox
from repro.partial.mutations import (applicable_mutations,
                                     apply_mutation)


def random_circuit(seed):
    rng = random.Random(seed)
    builder = CircuitBuilder("rc%d" % seed)
    pool = [builder.input("x%d" % i) for i in range(rng.randint(2, 5))]
    kinds = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
             GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF]
    for _ in range(rng.randint(2, 14)):
        gtype = rng.choice(kinds)
        fanin = 1 if gtype in (GateType.NOT, GateType.BUF) \
            else rng.randint(2, min(4, len(pool)))
        pool.append(builder.gate(gtype, rng.sample(pool, fanin)))
    for k in range(rng.randint(1, 3)):
        builder.output(builder.buf(pool[-(k + 1)]), "f%d" % k)
    return builder.build()


def _shuffled_declarations(circuit, rng):
    """Same circuit, gates declared in a different order."""
    other = Circuit(circuit.name)
    other.add_inputs(circuit.inputs)
    gates = list(circuit.gates)
    rng.shuffle(gates)
    # add_gate tolerates forward references (nets are resolved lazily),
    # so a shuffled declaration order is still the same netlist.
    for gate in gates:
        other.add_gate(gate.output, gate.gtype, gate.inputs)
    other.add_outputs(circuit.outputs)
    return other


def _with_buffer_chains(circuit, rng):
    """Insert BUF chains in front of random gate input pins."""
    other = Circuit(circuit.name)
    other.add_inputs(circuit.inputs)
    counter = [0]

    def buffered(net):
        if rng.random() < 0.5:
            return net
        prev = net
        for _ in range(rng.randint(1, 3)):
            counter[0] += 1
            name = "_buf%d" % counter[0]
            other.add_gate(name, GateType.BUF, [prev])
            prev = name
        return prev

    for gate in circuit.gates:
        other.add_gate(gate.output, gate.gtype,
                       [buffered(src) for src in gate.inputs])
    other.add_outputs(circuit.outputs)
    return other


class TestBasics:
    def test_nand_equals_not_of_and(self):
        a = Circuit("a")
        a.add_inputs(["x", "y"])
        a.add_gate("f", GateType.NAND, ["x", "y"])
        a.add_output("f")
        b = Circuit("b")
        b.add_inputs(["x", "y"])
        b.add_gate("t", GateType.AND, ["x", "y"])
        b.add_gate("f", GateType.NOT, ["t"])
        b.add_output("f")
        assert cone_hashes(a).hashes == cone_hashes(b).hashes

    def test_or_equals_de_morgan(self):
        a = Circuit("a")
        a.add_inputs(["x", "y"])
        a.add_gate("f", GateType.OR, ["x", "y"])
        a.add_output("f")
        b = Circuit("b")
        b.add_inputs(["x", "y"])
        b.add_gate("nx", GateType.NOT, ["x"])
        b.add_gate("ny", GateType.NOT, ["y"])
        b.add_gate("f", GateType.NAND, ["nx", "ny"])
        b.add_output("f")
        assert cone_hashes(a).hashes == cone_hashes(b).hashes

    def test_commutative_inputs_sorted(self):
        a = Circuit("a")
        a.add_inputs(["x", "y"])
        a.add_gate("f", GateType.AND, ["x", "y"])
        a.add_output("f")
        b = Circuit("b")
        b.add_inputs(["x", "y"])
        b.add_gate("f", GateType.AND, ["y", "x"])
        b.add_output("f")
        assert cone_hashes(a).hashes == cone_hashes(b).hashes

    def test_constant_folding(self):
        circuit = Circuit("c")
        circuit.add_input("x")
        circuit.add_gate("nx", GateType.NOT, ["x"])
        circuit.add_gate("f", GateType.AND, ["x", "nx"])
        circuit.add_gate("g", GateType.XOR, ["x", "x"])
        circuit.add_outputs(["f", "g"])
        hashes = cone_hashes(circuit)
        assert hashes.constants == (False, False)
        # Both cones fold to the same constant-0 hash.
        assert hashes.hashes[0] == hashes.hashes[1]

    def test_box_identity_is_positional(self):
        def one(box_inputs):
            circuit = Circuit("p")
            circuit.add_inputs(["x", "y"])
            circuit.add_gate("f", GateType.AND, ["z", "x"])
            circuit.add_output("f")
            return cone_hashes(
                circuit, [BlackBox("BB", box_inputs, ("z",))])

        assert one(("x", "y")).hashes == one(("x", "y")).hashes
        # Swapping the box's input pins changes the opaque call.
        assert one(("x", "y")).hashes != one(("y", "x")).hashes

    def test_interface_digest_covers_all_outputs(self):
        spec, partial = ALL_FIGURES["figure1"][0]()
        digest = circuit_digest(spec)
        assert digest == cone_hashes(spec).digest
        assert digest != circuit_digest(partial.circuit, partial.boxes)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_renaming_is_invariant(seed):
    circuit = random_circuit(seed)
    mapping = {}
    for i, net in enumerate(circuit.nets()):
        if not circuit.is_input(net) and net not in circuit.outputs:
            mapping[net] = "renamed_%d" % i
    renamed = circuit.renamed(mapping)
    assert cone_hashes(circuit).hashes == cone_hashes(renamed).hashes


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_input_renaming_is_invariant(seed):
    # Inputs are hashed by position, not by name: renaming every input
    # (order preserved) leaves all cone hashes unchanged.
    circuit = random_circuit(seed)
    mapping = {net: "in_%d" % i for i, net in enumerate(circuit.inputs)}
    renamed = circuit.renamed(mapping)
    assert cone_hashes(circuit).hashes == cone_hashes(renamed).hashes


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_declaration_order_is_invariant(seed):
    circuit = random_circuit(seed)
    shuffled = _shuffled_declarations(circuit, random.Random(seed + 1))
    assert cone_hashes(circuit).hashes == cone_hashes(shuffled).hashes


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_buffer_insertion_is_invariant(seed):
    circuit = random_circuit(seed)
    buffered = _with_buffer_chains(circuit, random.Random(seed + 2))
    assert cone_hashes(circuit).hashes == cone_hashes(buffered).hashes


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_semantic_mutations_change_some_hash(seed):
    # Hash equality implies equivalence; contrapositive: a mutation
    # that the BDD checker proves non-equivalent must change at least
    # one output cone's hash.
    circuit = random_circuit(seed)
    mutations = applicable_mutations(circuit)
    if not mutations:
        return
    mutation = random.Random(seed + 3).choice(mutations)
    mutated = apply_mutation(circuit, mutation)
    if check_equivalence(circuit, mutated).equivalent:
        return  # the mutation was functionally invisible here
    assert cone_hashes(circuit).hashes != cone_hashes(mutated).hashes


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_hash_equality_implies_equivalence(seed):
    # The soundness direction, cross-checked output by output: two
    # random circuits over the same inputs whose cones hash equal must
    # be functionally identical on those outputs.
    a = random_circuit(seed)
    b = random_circuit(seed + 7777)
    if a.inputs != b.inputs or len(a.outputs) != len(b.outputs):
        return
    ha, hb = cone_hashes(a), cone_hashes(b)
    for index in range(len(a.outputs)):
        if ha.hashes[index] == hb.hashes[index]:
            for bits in range(1 << len(a.inputs)):
                asg = {n: bool(bits >> i & 1)
                       for i, n in enumerate(a.inputs)}
                assert a.evaluate(asg)[a.outputs[index]] \
                    == b.evaluate(asg)[b.outputs[index]]
