"""The S-rule lint family (static cone analysis findings)."""

from repro.analysis import lint_static
from repro.analysis.diagnostics import RULES_BY_ID
from repro.circuit import GateType
from repro.circuit.netlist import Circuit
from repro.partial.blackbox import BlackBox, PartialImplementation


def _ids(report):
    return report.rule_ids()


class TestCatalog:
    def test_s_rules_registered(self):
        for rule_id in ("S001", "S002", "S003"):
            assert rule_id in RULES_BY_ID


class TestS001ConstantOutput:
    def test_constant_cone_flagged(self):
        circuit = Circuit("c")
        circuit.add_input("x")
        circuit.add_gate("nx", GateType.NOT, ["x"])
        circuit.add_gate("f", GateType.AND, ["x", "nx"])
        circuit.add_output("f")
        report = lint_static(circuit)
        assert "S001" in _ids(report)

    def test_nonconstant_clean(self):
        circuit = Circuit("c")
        circuit.add_inputs(["x", "y"])
        circuit.add_gate("f", GateType.AND, ["x", "y"])
        circuit.add_output("f")
        assert "S001" not in _ids(lint_static(circuit))


class TestS002DuplicateCone:
    def test_structural_duplicates_flagged(self):
        circuit = Circuit("c")
        circuit.add_inputs(["x", "y"])
        circuit.add_gate("f", GateType.AND, ["x", "y"])
        circuit.add_gate("g", GateType.AND, ["y", "x"])
        circuit.add_outputs(["f", "g"])
        report = lint_static(circuit)
        assert "S002" in _ids(report)
        finding = report.by_rule("S002")[0]
        assert set(finding.nets) == {"f", "g"}

    def test_distinct_cones_not_flagged(self):
        circuit = Circuit("c")
        circuit.add_inputs(["x", "y"])
        circuit.add_gate("f", GateType.AND, ["x", "y"])
        circuit.add_gate("g", GateType.OR, ["x", "y"])
        circuit.add_outputs(["f", "g"])
        assert "S002" not in _ids(lint_static(circuit))

    def test_buffer_alias_counts_as_duplicate(self):
        circuit = Circuit("c")
        circuit.add_inputs(["x", "y"])
        circuit.add_gate("f", GateType.AND, ["x", "y"])
        circuit.add_gate("g", GateType.BUF, ["f"])
        circuit.add_outputs(["f", "g"])
        assert "S002" in _ids(lint_static(circuit))


class TestS003UnobservableBox:
    def test_dead_box_flagged(self):
        circuit = Circuit("c")
        circuit.add_inputs(["x", "y"])
        circuit.add_gate("f", GateType.AND, ["x", "y"])
        circuit.add_output("f")
        partial = PartialImplementation(
            circuit, [BlackBox("DEAD", ("x",), ("unused",))])
        report = lint_static(partial)
        assert "S003" in _ids(report)

    def test_observed_box_clean(self):
        circuit = Circuit("c")
        circuit.add_inputs(["x", "y"])
        circuit.add_gate("f", GateType.AND, ["z", "y"])
        circuit.add_output("f")
        partial = PartialImplementation(
            circuit, [BlackBox("BB", ("x",), ("z",))])
        assert "S003" not in _ids(lint_static(partial))

    def test_box_observed_through_box_chain(self):
        # BB1 feeds BB2 feeds the output: both are observable.
        circuit = Circuit("c")
        circuit.add_inputs(["x"])
        circuit.add_gate("f", GateType.BUF, ["z2"])
        circuit.add_output("f")
        partial = PartialImplementation(circuit, [
            BlackBox("BB1", ("x",), ("z1",)),
            BlackBox("BB2", ("z1",), ("z2",)),
        ])
        assert "S003" not in _ids(lint_static(partial))
