"""Lint CLI: exit codes, formats, and the experiments dispatcher."""

import json

import pytest

from repro.analysis.cli import main as lint_main
from repro.experiments.cli import main as experiments_main

CLEAN_BENCH = """\
INPUT(a)
INPUT(b)
OUTPUT(f)
g = AND(a, b)
f = NOT(g)
"""

CYCLIC_BENCH = """\
INPUT(a)
OUTPUT(f)
x = AND(a, y)
y = NOT(x)
f = OR(x, y)
"""

MULTI_DRIVEN_BLIF = """\
.model twice
.inputs a b
.outputs f
.names a b f
11 1
.names a f
1 1
.end
"""

FREE_NET_BENCH = """\
INPUT(a)
OUTPUT(f)
f = AND(a, u)
"""


@pytest.fixture
def files(tmp_path):
    def make(name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return make


class TestExitCodes:
    def test_clean_file_exits_zero(self, files, capsys):
        assert lint_main([files("ok.bench", CLEAN_BENCH)]) == 0
        assert capsys.readouterr().out == ""

    def test_cycle_exits_one(self, files, capsys):
        assert lint_main([files("cyc.bench", CYCLIC_BENCH)]) == 1
        out = capsys.readouterr().out
        assert "L001" in out
        assert "x -> y -> x" in out

    def test_multiply_driven_exits_one(self, files, capsys):
        assert lint_main([files("twice.blif", MULTI_DRIVEN_BLIF)]) == 1
        assert "L002" in capsys.readouterr().out

    def test_missing_file_exits_two(self, capsys):
        assert lint_main(["/no/such/file.blif"]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_unknown_extension_exits_two(self, files, capsys):
        assert lint_main([files("netlist.txt", CLEAN_BENCH)]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_binary_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "junk.blif"
        path.write_bytes(b"garbage\x00\xff\n")
        assert lint_main([str(path)]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_unreadable_beats_findings(self, files, capsys):
        code = lint_main([files("cyc.bench", CYCLIC_BENCH),
                          "/no/such/file.blif"])
        assert code == 2

    def test_allow_free_suppresses_undriven(self, files, capsys):
        path = files("free.bench", FREE_NET_BENCH)
        assert lint_main([path]) == 1
        capsys.readouterr()
        assert lint_main(["--allow-free", path]) == 0


class TestFormats:
    def test_json_output(self, files, capsys):
        path = files("cyc.bench", CYCLIC_BENCH)
        assert lint_main(["--format", "json", path]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "L001"
        assert payload[0]["file"] == path
        assert payload[0]["nets"][0] == payload[0]["nets"][-1]

    def test_json_empty_for_clean_file(self, files, capsys):
        assert lint_main(["--format", "json",
                          files("ok.bench", CLEAN_BENCH)]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_text_summary_line(self, files, capsys):
        lint_main([files("cyc.bench", CYCLIC_BENCH)])
        assert "error(s)" in capsys.readouterr().out

    def test_parse_error_is_p001(self, files, capsys):
        path = files("broken.blif", ".names f\n.garbage\n")
        assert lint_main(["--format", "json", path]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert [d["rule"] for d in payload] == ["P001"]
        assert payload[0]["line"] == 2


class TestExperimentsDispatch:
    def test_lint_subcommand(self, files, capsys):
        assert experiments_main(
            ["lint", files("ok.bench", CLEAN_BENCH)]) == 0
        assert experiments_main(
            ["lint", files("cyc.bench", CYCLIC_BENCH)]) == 1

    def test_other_subcommands_untouched(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main(["not-a-command"])
