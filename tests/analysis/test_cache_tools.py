"""CheckCache housekeeping: info(), prune(), and the cache CLI."""

import json
import os

import pytest

from repro.analysis.static.cache import CheckCache
from repro.analysis.static.cli import main as cache_main


def fill(cache, count, payload_bytes=100):
    """Store ``count`` entries with increasing access times."""
    keys = []
    for i in range(count):
        key = cache.key("spec%d" % i, "impl%d" % i, "input_exact")
        cache.put(key, {"verdict": "ok", "pad": "x" * payload_bytes})
        path = cache.path_for(key)
        # Deterministic LRU order regardless of filesystem timing.
        os.utime(path, (1_000_000 + i, 1_000_000 + i))
        keys.append(key)
    return keys


class TestInfo:
    def test_empty_cache(self, tmp_path):
        cache = CheckCache(str(tmp_path / "cache"))
        assert cache.info() == {"entries": 0, "bytes": 0}

    def test_counts_entries_and_bytes(self, tmp_path):
        cache = CheckCache(str(tmp_path / "cache"))
        fill(cache, 5)
        report = cache.info()
        assert report["entries"] == 5
        assert report["bytes"] > 5 * 100

    def test_ignores_temp_files(self, tmp_path):
        cache = CheckCache(str(tmp_path / "cache"))
        (key,) = fill(cache, 1)
        fanout = os.path.dirname(cache.path_for(key))
        with open(os.path.join(fanout, ".tmp-junk.json"), "w") as f:
            f.write("{}")
        with open(os.path.join(fanout, "notes.txt"), "w") as f:
            f.write("hello")
        assert cache.info()["entries"] == 1


class TestPrune:
    def test_evicts_oldest_first(self, tmp_path):
        cache = CheckCache(str(tmp_path / "cache"))
        keys = fill(cache, 10)
        survivor_bytes = sum(
            os.path.getsize(cache.path_for(k)) for k in keys[5:])
        report = cache.prune(survivor_bytes)
        assert report["removed"] == 5
        assert report["entries"] == 5
        # The five oldest are gone, the five newest remain readable.
        for key in keys[:5]:
            assert not os.path.exists(cache.path_for(key))
        for key in keys[5:]:
            assert cache.get(key) is not None

    def test_zero_budget_empties_the_cache(self, tmp_path):
        cache = CheckCache(str(tmp_path / "cache"))
        fill(cache, 3)
        report = cache.prune(0)
        assert report["entries"] == 0
        assert report["bytes"] == 0
        assert cache.info() == {"entries": 0, "bytes": 0}

    def test_noop_when_under_budget(self, tmp_path):
        cache = CheckCache(str(tmp_path / "cache"))
        fill(cache, 3)
        report = cache.prune(10**9)
        assert report["removed"] == 0
        assert report["entries"] == 3

    def test_rejects_negative_budget(self, tmp_path):
        cache = CheckCache(str(tmp_path / "cache"))
        with pytest.raises(ValueError):
            cache.prune(-1)


class TestCli:
    def test_info_text_and_json(self, tmp_path, capsys):
        cache = CheckCache(str(tmp_path / "cache"))
        fill(cache, 2)
        assert cache_main(["info", cache.root]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert cache_main(["info", cache.root, "--format",
                           "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["entries"] == 2

    def test_prune_reports_evictions(self, tmp_path, capsys):
        cache = CheckCache(str(tmp_path / "cache"))
        fill(cache, 4)
        assert cache_main(["prune", cache.root, "--max-bytes",
                           "0"]) == 0
        out = capsys.readouterr().out
        assert "removed 4 entries" in out
        assert cache.info()["entries"] == 0

    def test_dispatched_from_experiments_cli(self, tmp_path, capsys):
        from repro.experiments.cli import main as experiments_main

        cache = CheckCache(str(tmp_path / "cache"))
        fill(cache, 1)
        assert experiments_main(["cache", "info", cache.root]) == 0
        assert "1 entries" in capsys.readouterr().out
