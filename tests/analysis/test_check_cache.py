"""The content-addressed check cache: keys, robustness, ladder rung 0."""

import json
import os

from repro.analysis.static import CheckCache
from repro.analysis.static.cache import CACHE_VERSION, budget_class
from repro.core.ladder import run_ladder
from repro.core.result import OUTCOME_OK
from repro.generators.paper_examples import ALL_FIGURES, figure1


class TestKeys:
    def test_key_is_deterministic_and_sensitive(self, tmp_path):
        cache = CheckCache(str(tmp_path))
        base = cache.key("s", "i", "ie", budget="nodes=None;soft=None")
        assert base == cache.key("s", "i", "ie",
                                 budget="nodes=None;soft=None")
        assert base != cache.key("s2", "i", "ie",
                                 budget="nodes=None;soft=None")
        assert base != cache.key("s", "i", "oe",
                                 budget="nodes=None;soft=None")
        assert base != cache.key("s", "i", "ie",
                                 budget="nodes=100;soft=None")
        assert base != cache.key("s", "i", "ie",
                                 budget="nodes=None;soft=None",
                                 variant="preflight")
        assert base != cache.key("s", "i", "ie",
                                 budget="nodes=None;soft=None",
                                 patterns=100, seed=1)

    def test_budget_class_canonical(self):
        assert budget_class() == "nodes=None;soft=None"
        assert budget_class(5000, 1.5) == "nodes=5000;soft=1.5"
        # repr round-trips floats that decimal formatting would mangle
        assert budget_class(None, 0.1) == "nodes=None;soft=0.1"

    def test_version_is_part_of_the_key(self, tmp_path):
        cache = CheckCache(str(tmp_path))
        assert ("v%d" % CACHE_VERSION) in "v%d" % CACHE_VERSION
        key = cache.key("s", "i", "ie")
        # simulate a format bump by rebuilding the material manually
        import hashlib

        other = hashlib.sha256("\x1f".join(
            ["v%d" % (CACHE_VERSION + 1), "s", "i", "ie", "",
             "None", "None", ""]).encode("utf-8")).hexdigest()
        assert key != other


class TestTraffic:
    def test_round_trip_and_counters(self, tmp_path):
        cache = CheckCache(str(tmp_path))
        key = cache.key("s", "i", "ie")
        assert cache.get(key) is None
        cache.put(key, {"error_found": False, "seconds": 0.25})
        assert cache.get(key) == {"error_found": False, "seconds": 0.25}
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = CheckCache(str(tmp_path))
        key = cache.key("s", "i", "ie")
        path = cache.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write("{truncated")
        assert cache.get(key) is None
        with open(path, "w") as handle:
            json.dump(["not", "a", "dict"], handle)
        assert cache.get(key) is None
        assert cache.misses == 2

    def test_failed_write_is_silent(self, tmp_path, monkeypatch):
        cache = CheckCache(str(tmp_path))

        def disk_full(src, dst):
            raise OSError("no space left on device")

        monkeypatch.setattr("repro.analysis.static.cache.os.replace",
                            disk_full)
        cache.put(cache.key("s", "i", "ie"), {"x": 1})  # must not raise
        assert cache.stores == 0
        # the temp file was cleaned up, the entry never materialized
        assert cache.get(cache.key("s", "i", "ie")) is None
        assert not any(name.startswith(".tmp-")
                       for _, _, files in os.walk(cache.root)
                       for name in files)

    def test_entries_fan_out_by_prefix(self, tmp_path):
        cache = CheckCache(str(tmp_path))
        key = cache.key("s", "i", "ie")
        cache.put(key, {"v": 1})
        assert os.path.dirname(cache.path_for(key)).endswith(key[:2])


class TestLadderRungZero:
    def test_warm_ladder_replays_byte_identically(self, tmp_path):
        spec, partial = figure1()
        cold = run_ladder(spec, partial, stop_at_first_error=False,
                          cache=str(tmp_path))
        warm = run_ladder(spec, partial, stop_at_first_error=False,
                          cache=str(tmp_path))
        assert [(r.check, r.error_found, r.seconds, r.outcome)
                for r in cold] \
            == [(r.check, r.error_found, r.seconds, r.outcome)
                for r in warm]
        assert all(r.stats.get("check_cache") == "hit" for r in warm)
        assert not any(r.stats.get("check_cache") for r in cold)

    def test_cache_respects_budget_class(self, tmp_path):
        from repro.resilience.budget import Budget

        spec, partial = figure1()
        run_ladder(spec, partial, stop_at_first_error=False,
                   cache=str(tmp_path))
        governed = run_ladder(spec, partial, stop_at_first_error=False,
                              cache=str(tmp_path),
                              budget=Budget.from_limits(
                                  node_limit=10_000_000))
        # different budget class -> no replay from the ungoverned run
        assert not any(r.stats.get("check_cache") == "hit"
                       for r in governed)

    def test_all_figures_replay_identically(self, tmp_path):
        for name, (factory, _expected) in ALL_FIGURES.items():
            spec, partial = factory()
            root = str(tmp_path / name)
            cold = run_ladder(spec, partial, stop_at_first_error=False,
                              cache=root)
            warm = run_ladder(spec, partial, stop_at_first_error=False,
                              cache=root)
            assert [(r.check, r.error_found, r.detail) for r in cold] \
                == [(r.check, r.error_found, r.detail) for r in warm], \
                name
            hits = [r for r in warm
                    if r.stats.get("check_cache") == "hit"]
            # every authoritative cold verdict is replayed warm
            assert len(hits) == sum(1 for r in cold
                                    if r.outcome == OUTCOME_OK)
