"""Netlist linter: every rule fires on its trigger, clean stays clean."""

import pytest

from repro.analysis import LintReport, Severity, lint_circuit, \
    lint_partial, rule
from repro.analysis.lint import lint_boxes
from repro.circuit import Circuit, CircuitBuilder, \
    CombinationalCycleError, GateType, loads_blif
from repro.circuit.srcloc import SourceMap
from repro.partial import BlackBox, PartialImplementation


def _clean_circuit() -> Circuit:
    builder = CircuitBuilder("clean")
    a, b = builder.input("a"), builder.input("b")
    builder.output(builder.and_(a, b), "f")
    return builder.circuit


def _cyclic_circuit() -> Circuit:
    c = Circuit("cyc")
    c.add_input("a")
    c.add_gate("x", GateType.AND, ["a", "y"])
    c.add_gate("y", GateType.NOT, ["x"])
    c.add_output("y")
    return c


class TestNetlistRules:
    def test_clean_circuit_has_no_findings(self):
        report = lint_circuit(_clean_circuit())
        assert report.ok
        assert len(report) == 0

    def test_cycle_reports_full_path_witness(self):
        report = lint_circuit(_cyclic_circuit())
        findings = report.by_rule("L001")
        assert len(findings) == 1
        cycle = findings[0].nets
        # Closed walk: starts and ends on the same net.
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"x", "y"}
        assert " -> ".join(cycle) in findings[0].message

    def test_validate_raises_cycle_error_with_path(self):
        with pytest.raises(CombinationalCycleError) as excinfo:
            _cyclic_circuit().validate()
        assert excinfo.value.cycle[0] == excinfo.value.cycle[-1]
        assert set(excinfo.value.cycle) == {"x", "y"}

    def test_undriven_net_read_by_gate(self):
        c = Circuit("undriven")
        c.add_input("a")
        c.add_gate("f", GateType.AND, ["a", "ghost"])
        c.add_output("f")
        report = lint_circuit(c)
        assert report.rule_ids() == ["L003"]
        assert not lint_circuit(c, allow_free=True).by_rule("L003")

    def test_dangling_output(self):
        c = Circuit("dangle")
        c.add_input("a")
        c.add_gate("f", GateType.NOT, ["a"])
        c.add_output("f")
        c.add_output("ghost")
        report = lint_circuit(c)
        assert report.rule_ids() == ["L004"]

    def test_dead_gate_outside_output_cone(self):
        c = Circuit("dead")
        c.add_input("a")
        c.add_gate("f", GateType.NOT, ["a"])
        c.add_gate("unused", GateType.BUF, ["a"])
        c.add_output("f")
        report = lint_circuit(c)
        dead = report.by_rule("dead-gate")
        assert [d.nets for d in dead] == [("unused",)]
        assert dead[0].severity == Severity.WARNING
        assert report.ok  # warnings only

    def test_degenerate_one_input_and(self):
        c = Circuit("degen")
        c.add_input("a")
        c.add_gate("f", GateType.AND, ["a"])
        c.add_output("f")
        report = lint_circuit(c)
        assert report.rule_ids() == ["L006"]
        assert "BUF" in report.by_rule("L006")[0].message

    def test_degenerate_duplicate_xor_fanin(self):
        c = Circuit("degen2")
        c.add_input("a")
        c.add_gate("f", GateType.XOR, ["a", "a"])
        c.add_output("f")
        report = lint_circuit(c)
        assert report.rule_ids() == ["L006"]
        assert "cancel" in report.by_rule("L006")[0].message

    def test_errors_only_profile_skips_warnings(self):
        c = Circuit("degen")
        c.add_input("a")
        c.add_gate("f", GateType.AND, ["a"])
        c.add_output("f")
        assert len(lint_circuit(c, errors_only=True)) == 0

    def test_parse_events_become_located_diagnostics(self):
        text = (".model twice\n.inputs a b\n.outputs f\n"
                ".names a b f\n11 1\n.names a f\n1 1\n.end\n")
        source = SourceMap(file="twice.blif")
        circuit = loads_blif(text, source_map=source, strict=False)
        report = lint_circuit(circuit, source=source)
        findings = report.by_rule("multiply-driven-net")
        assert len(findings) == 1
        assert findings[0].file == "twice.blif"
        assert findings[0].line == 6
        # First definition wins: f still behaves as AND(a, b), not
        # as the shadowing BUF(a) cover.
        assert circuit.evaluate({"a": True, "b": False})["f"] is False


class TestBoxRules:
    def _two_box_overlap(self):
        c = Circuit("overlap")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("s", GateType.NOT, ["a"])
        c.add_gate("f", GateType.AND, ["u", "v"])
        c.add_output("f")
        boxes = [BlackBox("bb1", ("s", "b"), ("u",)),
                 BlackBox("bb2", ("s",), ("v",))]
        return c, boxes

    def test_overlapping_cones_warn_about_theorem_2_2(self):
        c, boxes = self._two_box_overlap()
        report = lint_boxes(c, boxes)
        overlap = report.by_rule("box-cone-overlap")
        assert len(overlap) == 1
        assert "Theorem 2.2" in overlap[0].message
        assert "approximation" in overlap[0].message
        assert report.ok  # a warning, not an error

    def test_single_box_never_warns_overlap(self):
        c = Circuit("single")
        c.add_input("a")
        c.add_gate("f", GateType.BUF, ["u"])
        c.add_output("f")
        report = lint_boxes(c, [BlackBox("bb", ("a",), ("u",))])
        assert not report.by_rule("box-cone-overlap")

    def test_disjoint_cones_do_not_warn(self):
        c = Circuit("disjoint")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("f", GateType.AND, ["u", "v"])
        c.add_output("f")
        boxes = [BlackBox("bb1", ("a",), ("u",)),
                 BlackBox("bb2", ("b",), ("v",))]
        assert not lint_boxes(c, boxes).by_rule("box-cone-overlap")

    def test_box_output_collision_with_gate(self):
        c = Circuit("collide")
        c.add_input("a")
        c.add_gate("u", GateType.NOT, ["a"])
        c.add_output("u")
        report = lint_boxes(c, [BlackBox("bb", ("a",), ("u",))])
        assert "B001" in report.rule_ids()

    def test_free_net_without_box(self):
        c = Circuit("orphan")
        c.add_input("a")
        c.add_gate("f", GateType.AND, ["a", "mystery"])
        c.add_output("f")
        report = lint_boxes(c, [])
        assert report.rule_ids() == ["B002"]

    def test_box_self_feedback(self):
        c = Circuit("loop")
        c.add_input("a")
        c.add_gate("t", GateType.AND, ["a", "u"])
        c.add_gate("f", GateType.BUF, ["u"])
        c.add_output("f")
        report = lint_boxes(c, [BlackBox("bb", ("t",), ("u",))])
        assert "B003" in report.rule_ids()

    def test_mutual_box_cycle(self):
        c = Circuit("mutual")
        c.add_input("a")
        c.add_gate("f", GateType.AND, ["u", "v"])
        c.add_output("f")
        boxes = [BlackBox("bb1", ("v",), ("u",)),
                 BlackBox("bb2", ("u",), ("v",))]
        report = lint_boxes(c, boxes)
        feedback = report.by_rule("box-feedback")
        assert len(feedback) == 1
        assert "bb1" in feedback[0].message
        assert "bb2" in feedback[0].message

    def test_unread_box_output_is_info(self):
        c = Circuit("unread")
        c.add_input("a")
        c.add_gate("f", GateType.NOT, ["a"])
        c.add_output("f")
        report = lint_boxes(c, [BlackBox("bb", ("a",), ("u",))])
        unread = report.by_rule("unread-box-output")
        assert len(unread) == 1
        assert unread[0].severity == Severity.INFO

    def test_lint_partial_accepts_constructed_partial(self):
        c, boxes = self._two_box_overlap()
        partial = PartialImplementation(c, boxes)
        report = lint_partial(partial)
        assert report.by_rule("box-cone-overlap")

    def test_gate_feeding_only_box_inputs_is_not_dead(self):
        # 's' reaches the outputs only through the boxes; the bare
        # circuit cone misses it, but for a partial it is live logic.
        c, boxes = self._two_box_overlap()
        assert lint_circuit(c).by_rule("dead-gate")
        assert not lint_partial(c, boxes).by_rule("dead-gate")


class TestLadderIntegration:
    def test_ladder_attaches_diagnostics(self):
        from repro.core import run_ladder
        from repro.generators import figure1

        spec, partial = figure1()
        results = run_ladder(spec, partial, checks=("local",))
        assert all(isinstance(r.diagnostics, list) for r in results)

    def test_ladder_overlap_warning_reaches_results(self):
        from repro.core import run_ladder

        builder = CircuitBuilder("spec")
        a, b = builder.input("a"), builder.input("b")
        builder.output(builder.and_(a, b), "f")
        spec = builder.circuit

        impl = Circuit("impl")
        impl.add_input("a")
        impl.add_input("b")
        impl.add_gate("s", GateType.AND, ["a", "b"])
        impl.add_gate("f", GateType.AND, ["u", "v"])
        impl.add_output("f")
        partial = PartialImplementation(
            impl, [BlackBox("bb1", ("s",), ("u",)),
                   BlackBox("bb2", ("s",), ("v",))])
        results = run_ladder(spec, partial, checks=("local",))
        ids = {d.rule_id for r in results for d in r.diagnostics}
        assert "B004" in ids

    def test_ladder_lint_can_be_disabled(self):
        from repro.core import run_ladder
        from repro.generators import figure1

        spec, partial = figure1()
        results = run_ladder(spec, partial, checks=("local",),
                             lint=False)
        assert all(r.diagnostics == [] for r in results)

    def test_api_lint_method(self):
        from repro.api import BlackBoxChecker
        from repro.generators import figure1

        spec, partial = figure1()
        report = BlackBoxChecker(spec).lint(partial)
        assert isinstance(report, LintReport)
        assert report.ok


class TestReportMachinery:
    def test_rule_lookup_by_id_and_name(self):
        assert rule("L001") is rule("combinational-cycle")
        with pytest.raises(KeyError):
            rule("L999")

    def test_json_round_trip(self):
        import json

        report = lint_circuit(_cyclic_circuit())
        payload = json.loads(report.to_json())
        assert payload[0]["rule"] == "L001"
        assert payload[0]["severity"] == "error"

    def test_raise_if_errors(self):
        report = lint_circuit(_cyclic_circuit())
        with pytest.raises(ValueError):
            report.raise_if_errors()
        lint_circuit(_clean_circuit()).raise_if_errors()
