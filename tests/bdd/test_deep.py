"""Deep-BDD regression: the iterative kernels must not recurse.

The pre-rewrite kernels recursed once per BDD level, so any function
deeper than the interpreter's recursion limit (1000 by default) died
with ``RecursionError`` unless callers raised ``sys.setrecursionlimit``.
These tests build chains tens of thousands of levels deep and run every
hot kernel across them — under the *default* recursion limit, which is
asserted, never raised.
"""

import sys

import pytest

from repro.bdd import Bdd
from repro.bdd.manager import FALSE, TRUE

#: Deeper than any plausible recursion limit by an order of magnitude.
DEPTH = 50_000


@pytest.fixture(scope="module")
def deep():
    """A manager with 50k variables and two interleaved AND chains.

    ``even``/``odd`` are conjunctions of the even/odd variables; their
    conjunction is a single 50k-level chain.  Built bottom-up with
    ``mk`` (O(n)); folding ``acc & var`` would be O(n^2).
    """
    bdd = Bdd()  # auto_reorder off: sifting 50k vars is not the point
    bdd.add_vars("x%d" % i for i in range(DEPTH))
    mgr = bdd.manager
    even = odd = TRUE
    for var in range(DEPTH - 1, -1, -1):
        if var % 2 == 0:
            even = mgr.mk(var, FALSE, even)
        else:
            odd = mgr.mk(var, FALSE, odd)
    mgr.incref(even)
    mgr.incref(odd)
    return bdd, even, odd


def test_recursion_limit_is_untouched():
    # The whole point: no test here may paper over recursion with a
    # raised limit.  (pytest itself never lowers it below the default.)
    assert sys.getrecursionlimit() <= 10_000


def test_apply_and_full_depth(deep):
    bdd, even, odd = deep
    mgr = bdd.manager
    both = mgr.apply_and(even, odd)
    # AND of the two cubes is the full 50k-variable cube: one node per
    # variable plus the two terminals.
    assert mgr.size(both) == DEPTH + 2


def test_apply_not_full_depth(deep):
    bdd, even, odd = deep
    mgr = bdd.manager
    # Raw-manager refcount contract: a returned node must be
    # protected before the next apply_* call, which may trigger GC.
    neg = mgr.apply_not(even)
    mgr.incref(neg)
    try:
        assert mgr.apply_not(neg) == even
    finally:
        mgr.decref(neg)


def test_apply_xor_full_depth(deep):
    bdd, even, odd = deep
    mgr = bdd.manager
    x = mgr.apply_xor(even, odd)
    mgr.incref(x)
    try:
        # f ^ f = 0 exercises the terminal fast path at full depth too.
        assert mgr.apply_xor(even, even) == FALSE
        assert x != FALSE
        # XOR is self-inverse: (even ^ odd) ^ odd = even.
        assert mgr.apply_xor(x, odd) == even
    finally:
        mgr.decref(x)


def test_exists_full_depth(deep):
    bdd, even, odd = deep
    mgr = bdd.manager
    # Quantifying the bottom-most variable of the 25k-level even chain
    # forces the resolve loop through every level above it.
    bottom_even = DEPTH - 2 if (DEPTH - 2) % 2 == 0 else DEPTH - 1
    dropped = mgr.exists([bottom_even], even)
    assert mgr.size(dropped) == mgr.size(even) - 1


def test_sat_count_full_depth(deep):
    bdd, even, odd = deep
    mgr = bdd.manager
    # A cube over half the variables: exactly 2^(DEPTH/2) models.
    assert mgr.sat_count(even, nvars=DEPTH) == 1 << (DEPTH // 2)
    assert mgr.support(even) == ["x%d" % i for i in range(0, DEPTH, 2)]
