"""Tests for the constrain / restrict don't-care operators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import Bdd, constrain, minimize_restrict

NAMES = ["v%d" % i for i in range(5)]


def random_function(bdd, rng):
    f = bdd.constant(rng.random() < 0.5)
    for name in rng.sample(NAMES, rng.randint(1, 4)):
        v = bdd.var(name)
        op = rng.randrange(3)
        f = f & v if op == 0 else (f | v if op == 1 else f ^ v)
    return f


class TestContracts:
    @pytest.mark.parametrize("op", [constrain, minimize_restrict])
    @pytest.mark.parametrize("seed", range(15))
    def test_agreement_on_care_set(self, op, seed):
        rng = random.Random(seed)
        bdd = Bdd()
        bdd.add_vars(NAMES)
        f = random_function(bdd, rng)
        care = random_function(bdd, rng)
        if care.is_false:
            care = bdd.var("v0")
        g = op(f, care)
        assert (g & care) == (f & care)

    def test_full_care_is_identity(self):
        bdd = Bdd()
        bdd.add_vars(NAMES)
        f = bdd.var("v0") ^ bdd.var("v1")
        assert constrain(f, bdd.true) == f
        assert minimize_restrict(f, bdd.true) == f

    def test_empty_care_rejected(self):
        bdd = Bdd()
        bdd.add_vars(NAMES)
        f = bdd.var("v0")
        with pytest.raises(ValueError):
            constrain(f, bdd.false)
        with pytest.raises(ValueError):
            minimize_restrict(f, bdd.false)

    def test_manager_mixing_rejected(self):
        b1, b2 = Bdd(), Bdd()
        b1.add_var("x")
        b2.add_var("x")
        with pytest.raises(ValueError):
            constrain(b1.var("x"), b2.var("x"))

    def test_constrain_can_shrink(self):
        bdd = Bdd()
        a, b, c = bdd.add_vars(["a", "b", "c"])
        f = (a & b) | (~a & c)
        g = constrain(f, a)          # care: a = 1
        assert g == b

    def test_restrict_never_grows_support(self):
        rng = random.Random(7)
        bdd = Bdd()
        bdd.add_vars(NAMES)
        for _ in range(20):
            f = random_function(bdd, rng)
            care = random_function(bdd, rng)
            if care.is_false:
                continue
            g = minimize_restrict(f, care)
            assert set(g.support()) <= set(f.support())

    def test_constrain_may_grow_support_but_stays_correct(self):
        """The known constrain anomaly: support can grow; the care-set
        contract still holds (this is why synthesis uses restrict)."""
        bdd = Bdd()
        a, b, c = bdd.add_vars(["a", "b", "c"])
        f = b
        care = (a & b) | (~a & c)
        g = constrain(f, care)
        assert (g & care) == (f & care)


class TestSynthesisMinimization:
    def test_minimized_witness_verifies_and_is_smaller(self):
        from repro.core import check_equivalence, synthesize_single_box
        from repro.generators.comparator import magnitude_comparator
        from repro.partial import make_partial

        spec = magnitude_comparator(8)
        partial = make_partial(spec, fraction=0.25, num_boxes=1, seed=3)
        plain = synthesize_single_box(spec, partial)
        small = synthesize_single_box(spec, partial, minimize=True)
        assert plain is not None and small is not None
        assert small.num_gates <= plain.num_gates
        complete = partial.substitute(
            {partial.boxes[0].name: small})
        assert check_equivalence(spec, complete).equivalent
