"""Tests for DOT export."""

import pytest

from repro.bdd import Bdd, to_dot


@pytest.fixture
def bdd():
    b = Bdd()
    b.add_vars(["x", "y"])
    return b


def test_single_function(bdd):
    f = bdd.var("x") & bdd.var("y")
    dot = to_dot(f)
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")
    assert '"x"' in dot and '"y"' in dot
    assert '"0"' in dot and '"1"' in dot


def test_multiple_functions_share_nodes(bdd):
    x, y = bdd.var("x"), bdd.var("y")
    dot = to_dot([x & y, x | y], labels=["and", "or"])
    assert "and" in dot and "or" in dot
    # both roots present
    assert dot.count("root") >= 4  # 2 declarations + 2 edges


def test_rank_same_per_level(bdd):
    f = bdd.var("x") ^ bdd.var("y")
    dot = to_dot(f)
    assert "rank=same" in dot


def test_label_count_mismatch_rejected(bdd):
    with pytest.raises(ValueError):
        to_dot([bdd.var("x")], labels=["a", "b"])


def test_empty_rejected():
    with pytest.raises(ValueError):
        to_dot([])
