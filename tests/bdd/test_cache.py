"""Segmented computed-table behaviour: bounding, eviction, retention.

The computed table is a pure performance artifact — losing an entry may
cost recomputation but must never change a result.  The core property
test drives a 64-entry-per-segment manager and an unbounded one through
the same random operation programs and requires *identical node ids*
at every step: node identity comes from the unique table alone, so any
divergence means an eviction leaked into semantics.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import Bdd, CacheConfig
from repro.bdd._legacy import LegacyBdd
from repro.bdd.cache import OP_NAMES

NAMES = ["a", "b", "c", "d", "e"]

#: One interpreted instruction: (opcode, operand picks).  Operand
#: indices are taken modulo the live pool size at execution time.
_STEP = st.tuples(
    st.sampled_from(["and", "or", "xor", "not", "ite", "exists",
                     "restrict"]),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
)


def _run_program(bdd, program):
    """Execute a program against one manager; return the node-id trace."""
    pool = [bdd.var(n) for n in NAMES]
    trace = []
    for op, i, j, k in program:
        f = pool[i % len(pool)]
        g = pool[j % len(pool)]
        h = pool[k % len(pool)]
        if op == "and":
            result = f & g
        elif op == "or":
            result = f | g
        elif op == "xor":
            result = f ^ g
        elif op == "not":
            result = ~f
        elif op == "ite":
            result = f.ite(g, h)
        elif op == "exists":
            result = f.exists([NAMES[j % len(NAMES)]])
        else:  # restrict
            result = f.restrict({NAMES[j % len(NAMES)]: bool(k % 2)})
        pool.append(result)
        trace.append(result.node)
    return trace


def _fresh(cache_config=None, cls=Bdd):
    bdd = cls(cache_config=cache_config)
    bdd.add_vars(NAMES)
    return bdd


@settings(max_examples=60, deadline=None)
@given(st.lists(_STEP, max_size=40))
def test_tiny_cache_matches_unbounded(program):
    """A 64-entry bounded table and an unbounded one agree node-for-node."""
    bounded = _fresh(CacheConfig(segment_entries=64))
    unbounded = _fresh(CacheConfig(segment_entries=0))
    assert _run_program(bounded, program) == _run_program(unbounded,
                                                          program)


@settings(max_examples=40, deadline=None)
@given(st.lists(_STEP, max_size=30))
def test_bounded_iterative_matches_legacy(program):
    """Iterative kernels + bounded table == recursive reference manager."""
    current = _fresh(CacheConfig(segment_entries=64))
    legacy = _fresh(cls=LegacyBdd)
    assert _run_program(current, program) == _run_program(legacy,
                                                          program)


class TestEviction:
    def test_segment_respects_bound_and_counts_evictions(self):
        bdd = _fresh(CacheConfig(segment_entries=4))
        vs = [bdd.var(n) for n in NAMES]
        # 10 distinct AND results: far more than 4 cacheable entries.
        keep = [f & g for f in vs for g in vs if f.node < g.node]
        stats = bdd.cache_stats()
        assert stats["ops"]["and"]["entries"] <= 4
        assert stats["ops"]["and"]["evictions"] > 0
        assert stats["total"]["evictions"] > 0

    def test_unbounded_never_evicts(self):
        bdd = _fresh(CacheConfig(segment_entries=0))
        vs = [bdd.var(n) for n in NAMES]
        keep = [f & g for f in vs for g in vs if f.node < g.node]
        assert bdd.cache_stats()["total"]["evictions"] == 0

    def test_hits_are_counted(self):
        bdd = _fresh()
        a, b = bdd.var("a"), bdd.var("b")
        first = a & b
        before = bdd.cache_stats()["total"]["hits"]
        second = a & b
        assert second == first
        assert bdd.cache_stats()["total"]["hits"] == before + 1


class TestGcRetention:
    def test_live_entries_survive_gc_when_enabled(self):
        bdd = _fresh(CacheConfig(keep_across_gc=True))
        a, b = bdd.var("a"), bdd.var("b")
        product = a & b  # operands and result all externally referenced
        bdd.manager.collect_garbage()
        before = bdd.cache_stats()["total"]["hits"]
        again = a & b
        assert again == product
        assert bdd.cache_stats()["total"]["hits"] == before + 1

    def test_gc_clears_table_when_disabled(self):
        bdd = _fresh(CacheConfig(keep_across_gc=False))
        a, b = bdd.var("a"), bdd.var("b")
        product = a & b
        bdd.manager.collect_garbage()
        assert bdd.cache_stats()["total"]["entries"] == 0

    def test_dead_entries_are_dropped_either_way(self):
        bdd = _fresh(CacheConfig(keep_across_gc=True))
        a, b = bdd.var("a"), bdd.var("b")
        product = a & b
        del product  # drop the only reference -> dead node
        entries_before = bdd.cache_stats()["total"]["entries"]
        assert entries_before > 0
        bdd.manager.collect_garbage()
        # The AND entry pointed at a node the sweep reclaimed.
        assert bdd.cache_stats()["total"]["entries"] < entries_before


class TestConfigValidation:
    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(segment_entries=-1)

    def test_non_int_entries_rejected(self):
        with pytest.raises(TypeError):
            CacheConfig(segment_entries="64")
        with pytest.raises(TypeError):
            CacheConfig(segment_entries=True)

    def test_entry_limit_of_unbounded_is_huge(self):
        assert CacheConfig(segment_entries=0).entry_limit > 1 << 40
        assert CacheConfig(segment_entries=8).entry_limit == 8

    def test_manager_rejects_non_config(self):
        with pytest.raises(TypeError):
            Bdd(cache_config=object())


def test_cache_stats_shape():
    bdd = _fresh()
    stats = bdd.cache_stats()
    assert set(stats) == {"ops", "total"}
    assert set(stats["ops"]) == set(OP_NAMES)
    for per_op in stats["ops"].values():
        assert {"hits", "misses", "evictions",
                "entries"} <= set(per_op)
    total = stats["total"]
    assert {"hits", "misses", "evictions", "entries",
            "hit_rate"} <= set(total)
    assert 0.0 <= total["hit_rate"] <= 1.0
