"""Unit tests for the low-level BDD manager."""

import pytest

from repro.bdd import Bdd, FALSE, TRUE
from repro.bdd.manager import BddManager


@pytest.fixture
def bdd():
    b = Bdd()
    b.add_vars(["a", "b", "c", "d"])
    return b


def all_assignments(names):
    for bits in range(1 << len(names)):
        yield {n: bool((bits >> i) & 1) for i, n in enumerate(names)}


class TestNodeConstruction:
    def test_terminals_are_fixed(self):
        mgr = BddManager()
        assert FALSE == 0 and TRUE == 1
        assert mgr.is_terminal(FALSE) and mgr.is_terminal(TRUE)

    def test_mk_reduces_redundant_node(self):
        mgr = BddManager()
        v = mgr.add_var("x")
        assert mgr.mk(v, TRUE, TRUE) == TRUE
        assert mgr.mk(v, FALSE, FALSE) == FALSE

    def test_mk_hash_conses(self):
        mgr = BddManager()
        v = mgr.add_var("x")
        n1 = mgr.mk(v, FALSE, TRUE)
        n2 = mgr.mk(v, FALSE, TRUE)
        assert n1 == n2

    def test_var_node_and_negation(self, bdd):
        a = bdd.var("a")
        assert a.evaluate({"a": True})
        assert not a.evaluate({"a": False})
        na = ~a
        assert na.evaluate({"a": False})

    def test_duplicate_variable_name_rejected(self):
        bdd = Bdd()
        bdd.add_var("x")
        with pytest.raises(ValueError):
            bdd.add_var("x")

    def test_unknown_variable_rejected(self, bdd):
        with pytest.raises(ValueError):
            bdd.var("nope")
        with pytest.raises(ValueError):
            bdd.manager.var_id(99)

    def test_var_order_follows_declaration(self, bdd):
        assert bdd.var_order == ["a", "b", "c", "d"]
        assert bdd.num_vars == 4


class TestBooleanOperations:
    def test_and_or_xor_against_truth_tables(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        for asg in all_assignments(["a", "b"]):
            assert (a & b).evaluate(asg) == (asg["a"] and asg["b"])
            assert (a | b).evaluate(asg) == (asg["a"] or asg["b"])
            assert (a ^ b).evaluate(asg) == (asg["a"] != asg["b"])

    def test_de_morgan(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert ~(a & b) == (~a | ~b)
        assert ~(a | b) == (~a & ~b)

    def test_ite(self, bdd):
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        f = a.ite(b, c)
        for asg in all_assignments(["a", "b", "c"]):
            want = asg["b"] if asg["a"] else asg["c"]
            assert f.evaluate(asg) == want

    def test_implies_equiv(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert a.implies(b) == (~a | b)
        assert a.equiv(b) == ~(a ^ b)

    def test_xnor_of_equal_is_true(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = (a & b) | (~a & ~b)
        assert a.equiv(b) == f

    def test_constant_folding(self, bdd):
        a = bdd.var("a")
        assert (a & bdd.false).is_false
        assert (a | bdd.true).is_true
        assert (a ^ a).is_false
        assert (a & a) == a

    def test_difference_operator(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert (a - b) == (a & ~b)


class TestQuantification:
    def test_exists_removes_variable(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = (a & b).exists(["a"])
        assert f == b
        assert "a" not in f.support()

    def test_forall(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert (a | b).forall(["a"]) == b
        assert (a | ~a).forall(["a"]).is_true

    def test_quantifier_duality(self, bdd):
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        f = (a & b) | (c ^ a)
        assert ~(f.exists(["a", "c"])) == (~f).forall(["a", "c"])

    def test_empty_quantifier_is_identity(self, bdd):
        a = bdd.var("a")
        assert a.exists([]) == a
        assert a.forall([]) == a

    def test_and_exists_matches_composition(self, bdd):
        a, b, c, d = (bdd.var(n) for n in "abcd")
        f = (a & b) | c
        g = (b ^ d) & a
        assert f.and_exists(g, ["b", "d"]) == (f & g).exists(["b", "d"])

    def test_quantify_absent_variable_is_noop(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = a & b
        assert f.exists(["c"]) == f
        assert f.forall(["d"]) == f


class TestRestrictCompose:
    def test_restrict_cofactor(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = (a & b) | (~a & ~b)
        assert f.restrict({"a": True}) == b
        assert f.restrict({"a": False}) == ~b

    def test_restrict_multiple(self, bdd):
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        f = (a & b) | c
        assert f.restrict({"a": True, "b": True}).is_true

    def test_compose_substitutes_function(self, bdd):
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        f = a & b
        g = f.compose({"a": b ^ c})
        for asg in all_assignments(["b", "c"]):
            want = (asg["b"] != asg["c"]) and asg["b"]
            assert g.evaluate(asg) == want

    def test_compose_simultaneous_not_sequential(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = a & ~b
        swapped = f.compose({"a": b, "b": a})
        assert swapped == (b & ~a)


class TestSatOperations:
    def test_sat_one_of_false_is_none(self, bdd):
        assert bdd.false.sat_one() is None

    def test_sat_one_satisfies(self, bdd):
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        f = (a ^ b) & c
        asg = f.sat_one()
        full = {n: asg.get(n, False) for n in "abc"}
        assert f.evaluate(full)

    def test_sat_count(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert (a & b).sat_count() == 4      # 4 declared vars -> 2 free
        assert (a | b).sat_count() == 12
        assert bdd.true.sat_count() == 16
        assert bdd.false.sat_count() == 0

    def test_sat_count_custom_width(self, bdd):
        a = bdd.var("a")
        assert a.sat_count(nvars=5) == 16

    def test_sat_count_rejects_too_small_width(self, bdd):
        with pytest.raises(ValueError):
            bdd.var("a").sat_count(nvars=2)

    def test_sat_iter_covers_on_set(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = a ^ b
        total = 0
        for cube in f.sat_iter():
            free = 4 - len(cube)
            total += 1 << free
            full = {n: cube.get(n, False) for n in "abcd"}
            assert f.evaluate(full)
        assert total == f.sat_count()

    def test_support(self, bdd):
        a, c = bdd.var("a"), bdd.var("c")
        assert (a & c).support() == ["a", "c"]
        assert bdd.true.support() == []

    def test_evaluate_missing_variable_raises(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        with pytest.raises(ValueError):
            (a & b).evaluate({"a": True})


class TestGarbageCollection:
    def test_collect_reclaims_dead_nodes(self):
        bdd = Bdd()
        bdd.add_vars(["x", "y", "z"])
        keep = bdd.var("x") & bdd.var("y")
        temp = keep ^ bdd.var("z")
        before = len(bdd)
        del temp
        freed = bdd.collect_garbage()
        assert freed > 0
        assert len(bdd) < before
        bdd.manager.check_invariants()

    def test_referenced_nodes_survive(self):
        bdd = Bdd()
        bdd.add_vars(["x", "y"])
        f = bdd.var("x") ^ bdd.var("y")
        bdd.collect_garbage()
        assert f.evaluate({"x": True, "y": False})
        bdd.manager.check_invariants()

    def test_node_reuse_after_gc(self):
        bdd = Bdd()
        bdd.add_vars(["x", "y"])
        g = bdd.var("x") & bdd.var("y")
        del g
        bdd.collect_garbage()
        h = bdd.var("x") & bdd.var("y")
        assert h.evaluate({"x": True, "y": True})
        bdd.manager.check_invariants()

    def test_peak_tracking_monotone(self):
        bdd = Bdd()
        bdd.add_vars(["x", "y", "z"])
        _ = (bdd.var("x") ^ bdd.var("y")) & bdd.var("z")
        peak = bdd.peak_live_nodes
        bdd.collect_garbage()
        assert bdd.peak_live_nodes >= peak
        assert bdd.peak_live_nodes >= len(bdd)


class TestStructure:
    def test_size_counts_shared_nodes_once(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = a ^ b
        assert f.size() == bdd.manager.size(f.node)
        pair = bdd.manager.size([f.node, f.node])
        assert pair == f.size()

    def test_incref_guard(self):
        mgr = BddManager()
        with pytest.raises(RuntimeError):
            mgr.decref(5) if False else mgr.decref(
                mgr.mk(mgr.add_var("x"), FALSE, TRUE))

    def test_node_var_of_terminal_raises(self):
        mgr = BddManager()
        with pytest.raises(ValueError):
            mgr.node_var(TRUE)
