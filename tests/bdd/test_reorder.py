"""Tests for level swapping and sifting reordering."""

import pytest

from repro.bdd import Bdd, set_order, sift, swap_adjacent_levels


def build_fixture():
    bdd = Bdd()
    names = ["a", "b", "c", "d", "e"]
    bdd.add_vars(names)
    a, b, c, d, e = (bdd.var(n) for n in names)
    functions = {
        "maj": (a & b) | (b & c) | (a & c),
        "parity": a ^ b ^ c ^ d ^ e,
        "chain": (a & b) | (c & d) | e,
        "eq": a.equiv(d) & b.equiv(e),
    }
    return bdd, names, functions


def truth_table(fn, names):
    out = []
    for bits in range(1 << len(names)):
        asg = {n: bool((bits >> i) & 1) for i, n in enumerate(names)}
        out.append(fn.evaluate(asg))
    return out


class TestSwap:
    def test_swap_preserves_semantics(self):
        bdd, names, functions = build_fixture()
        tables = {k: truth_table(f, names) for k, f in functions.items()}
        for level in range(len(names) - 1):
            bdd.collect_garbage()
            swap_adjacent_levels(bdd.manager, level)
            bdd.manager.check_invariants()
            for key, f in functions.items():
                assert truth_table(f, names) == tables[key], \
                    "swap at level %d broke %s" % (level, key)

    def test_swap_swaps_order(self):
        bdd, names, _ = build_fixture()
        bdd.collect_garbage()
        swap_adjacent_levels(bdd.manager, 0)
        assert bdd.var_order[:2] == ["b", "a"]

    def test_swap_out_of_range(self):
        bdd, _, _ = build_fixture()
        with pytest.raises(ValueError):
            swap_adjacent_levels(bdd.manager, 4)
        with pytest.raises(ValueError):
            swap_adjacent_levels(bdd.manager, -1)

    def test_double_swap_is_identity_on_order(self):
        bdd, names, _ = build_fixture()
        bdd.collect_garbage()
        before = bdd.var_order
        size_before = len(bdd)
        swap_adjacent_levels(bdd.manager, 2)
        swap_adjacent_levels(bdd.manager, 2)
        assert bdd.var_order == before
        assert len(bdd) == size_before
        bdd.manager.check_invariants()


class TestSetOrder:
    def test_set_order_applies_permutation(self):
        bdd, names, functions = build_fixture()
        tables = {k: truth_table(f, names) for k, f in functions.items()}
        bdd.collect_garbage()
        set_order(bdd.manager, ["e", "d", "c", "b", "a"])
        assert bdd.var_order == ["e", "d", "c", "b", "a"]
        bdd.manager.check_invariants()
        for key, f in functions.items():
            assert truth_table(f, names) == tables[key]

    def test_set_order_rejects_partial_permutation(self):
        bdd, _, _ = build_fixture()
        with pytest.raises(ValueError):
            set_order(bdd.manager, ["a", "b"])


class TestSift:
    def test_sift_reduces_interleaving_blowup(self):
        # The classic worst case: a1&b1 | a2&b2 | ... with all a's
        # declared before all b's is exponential; sifting must shrink it.
        bdd = Bdd()
        n = 6
        a_vars = [bdd.add_var("a%d" % i) for i in range(n)]
        b_vars = [bdd.add_var("b%d" % i) for i in range(n)]
        f = bdd.false
        for av, bv in zip(a_vars, b_vars):
            f = f | (av & bv)
        bad_size = f.size()
        bdd.reorder()
        bdd.manager.check_invariants()
        assert f.size() < bad_size / 2
        # semantics preserved
        assert f.evaluate({"a3": True, "b3": True,
                           **{v: False for v in
                              ["a%d" % i for i in range(n) if i != 3]
                              + ["b%d" % i for i in range(n) if i != 3]}})

    def test_sift_preserves_semantics(self):
        bdd, names, functions = build_fixture()
        tables = {k: truth_table(f, names) for k, f in functions.items()}
        bdd.reorder()
        for key, f in functions.items():
            assert truth_table(f, names) == tables[key]

    def test_sift_max_vars(self):
        bdd, names, functions = build_fixture()
        bdd.collect_garbage()
        sift(bdd.manager, max_vars=2)
        bdd.manager.check_invariants()

    def test_auto_reorder_triggers(self):
        bdd = Bdd(auto_reorder=True, initial_reorder_threshold=64)
        n = 8
        a_vars = [bdd.add_var("a%d" % i) for i in range(n)]
        b_vars = [bdd.add_var("b%d" % i) for i in range(n)]
        f = bdd.false
        for av, bv in zip(a_vars, b_vars):
            f = f | (av & bv)
        _ = f & f  # one more op so the maintenance hook sees the growth
        assert bdd.manager.n_reorderings > 0
        # interleaved order keeps the function linear-sized
        assert f.size() <= 3 * n + 2
        bdd.manager.check_invariants()
