"""Tests for the Function wrapper / Bdd facade."""

import pytest

from repro.bdd import Bdd, default_bdd


@pytest.fixture
def bdd():
    b = Bdd()
    b.add_vars(["x", "y", "z"])
    return b


class TestWrapperSemantics:
    def test_bool_conversion_is_rejected(self, bdd):
        with pytest.raises(TypeError):
            bool(bdd.var("x"))

    def test_mixing_managers_rejected(self, bdd):
        other = Bdd()
        other.add_var("x")
        with pytest.raises(ValueError):
            bdd.var("x") & other.var("x")

    def test_operations_with_python_bools(self, bdd):
        x = bdd.var("x")
        assert (x & True) == x
        assert (x & False).is_false
        assert (x | True).is_true
        assert (x ^ True) == ~x

    def test_equality_with_bool(self, bdd):
        assert bdd.true == True            # noqa: E712
        assert bdd.false == False          # noqa: E712
        assert not (bdd.var("x") == True)  # noqa: E712

    def test_hash_consistent_with_equality(self, bdd):
        x1 = bdd.var("x")
        x2 = bdd.var("x")
        assert x1 == x2
        assert hash(x1) == hash(x2)
        assert len({x1, x2}) == 1

    def test_repr_forms(self, bdd):
        assert "TRUE" in repr(bdd.true)
        assert "FALSE" in repr(bdd.false)
        assert "x" in repr(bdd.var("x"))

    def test_call_is_evaluate(self, bdd):
        f = bdd.var("x") ^ bdd.var("y")
        assert f({"x": True, "y": False})

    def test_constant_flags(self, bdd):
        assert bdd.true.is_constant and bdd.false.is_constant
        assert not bdd.var("x").is_constant

    def test_type_error_on_bad_operand(self, bdd):
        with pytest.raises(TypeError):
            bdd.var("x") & 3


class TestFacadeHelpers:
    def test_constant(self, bdd):
        assert bdd.constant(True).is_true
        assert bdd.constant(False).is_false

    def test_cube(self, bdd):
        cube = bdd.cube({"x": True, "y": False})
        assert cube.evaluate({"x": True, "y": False, "z": False})
        assert not cube.evaluate({"x": True, "y": True, "z": False})

    def test_conj_disj(self, bdd):
        xs = [bdd.var(n) for n in ("x", "y", "z")]
        assert bdd.conj(xs).evaluate({"x": True, "y": True, "z": True})
        assert not bdd.conj(xs).evaluate(
            {"x": True, "y": False, "z": True})
        assert bdd.disj(xs).evaluate({"x": False, "y": False, "z": True})
        assert bdd.conj([]).is_true
        assert bdd.disj([]).is_false

    def test_add_vars(self):
        bdd = Bdd()
        fs = bdd.add_vars(["p", "q"])
        assert [f.support() for f in fs] == [["p"], ["q"]]

    def test_has_var(self, bdd):
        assert bdd.has_var("x")
        assert not bdd.has_var("w")

    def test_len_and_repr(self, bdd):
        _ = bdd.var("x") & bdd.var("y")
        assert len(bdd) >= 3
        assert "Bdd" in repr(bdd)

    def test_default_bdd_has_reordering_enabled(self):
        bdd = default_bdd()
        assert bdd.manager.auto_reorder
