"""Arena backend: unit tests plus the dict-vs-arena differential suite.

The arena manager (:mod:`repro.bdd.arena`) re-implements the dict
manager's exact semantics on numpy struct-of-arrays storage.  Node ids
are assigned in the same order by both (terminals 0/1, then creation
order), so the differential property holds them to the strongest
possible standard: *identical node ids* for identical operation
programs — any divergence in hashing, caching, GC or reordering shows
up as a wrong integer, not just a wrong truth table.

Everything here is skipped without numpy; the no-numpy CI job instead
proves the legacy/dict backends and the structured arena diagnostic.
"""

import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import Bdd, arena_available
from repro.bdd.backends import (BACKEND_ENV, backend_class, make_bdd,
                                normalize_backend, resolve_backend)

pytestmark = pytest.mark.skipif(not arena_available(),
                                reason="arena backend needs numpy")

NAMES = ["a", "b", "c", "d", "e"]

#: One interpreted instruction, as in ``test_cache.py`` plus the
#: quantifier/substitution ops the arena reimplements.
_STEP = st.tuples(
    st.sampled_from(["and", "or", "xor", "not", "ite", "exists",
                     "forall", "and_exists", "restrict", "compose"]),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
)


def _arena_cls():
    from repro.bdd.arena import ArenaBdd
    return ArenaBdd


def _run_program(bdd, program):
    """Execute a program against one manager; return the node-id trace."""
    pool = [bdd.var(n) for n in NAMES]
    trace = []
    for op, i, j, k in program:
        f = pool[i % len(pool)]
        g = pool[j % len(pool)]
        h = pool[k % len(pool)]
        name = NAMES[j % len(NAMES)]
        if op == "and":
            result = f & g
        elif op == "or":
            result = f | g
        elif op == "xor":
            result = f ^ g
        elif op == "not":
            result = ~f
        elif op == "ite":
            result = f.ite(g, h)
        elif op == "exists":
            result = f.exists([name])
        elif op == "forall":
            result = f.forall([name])
        elif op == "and_exists":
            result = f.and_exists(g, [NAMES[k % len(NAMES)]])
        elif op == "restrict":
            result = f.restrict({name: bool(k % 2)})
        else:  # compose
            result = f.compose({name: h})
        pool.append(result)
        trace.append(result.node)
    return trace


def _fresh(cls=Bdd, **kwargs):
    bdd = cls(**kwargs)
    bdd.add_vars(NAMES)
    return bdd


@settings(max_examples=60, deadline=None)
@given(st.lists(_STEP, max_size=40))
def test_arena_matches_dict_node_for_node(program):
    """The differential core: identical programs, identical node ids."""
    arena = _fresh(_arena_cls())
    current = _fresh(Bdd)
    assert _run_program(arena, program) == _run_program(current, program)
    assert len(arena) == len(current)
    assert arena.manager.invariant_violations() == []


@settings(max_examples=25, deadline=None)
@given(st.lists(_STEP, max_size=30), st.integers(0, 3))
def test_arena_matches_dict_through_gc_and_reorder(program, seed):
    """Same trace when GC and sifting interleave with the program."""
    arena = _fresh(_arena_cls())
    current = _fresh(Bdd)
    cut = len(program) // 2
    traces = []
    for bdd in (arena, current):
        head = _run_program(bdd, program[:cut])
        bdd.manager.collect_garbage()
        bdd.reorder()
        tail = _run_program(bdd, program[cut:])
        traces.append((head, tail, list(bdd.manager.var_order),
                       len(bdd)))
    assert traces[0] == traces[1]
    assert arena.manager.invariant_violations() == []


class TestArenaUnit:
    def test_node_ids_and_truth_tables(self):
        bdd = _arena_cls()()
        bdd.add_vars("abc")
        a, b, c = (bdd.var(n) for n in "abc")
        f = (a & b) | ~c
        for bits in range(8):
            asg = {"a": bool(bits & 1), "b": bool(bits & 2),
                   "c": bool(bits & 4)}
            assert f.evaluate(asg) == ((asg["a"] and asg["b"])
                                       or not asg["c"])
        assert f.sat_count(nvars=3) == 5

    def test_unique_table_stats_shape(self):
        bdd = _fresh(_arena_cls())
        a, b = bdd.var("a"), bdd.var("b")
        keep = a ^ b
        stats = bdd.manager.unique_table_stats()
        assert {"capacity", "entries", "load_factor", "tombstones",
                "resizes", "rebuilds", "probe_p95",
                "probe_max"} <= set(stats)
        assert stats["entries"] == len(bdd) - 2  # terminals not hashed
        assert 0.0 <= stats["load_factor"] <= 1.0
        assert stats["probe_p95"] <= stats["probe_max"]

    def test_unique_table_resizes_under_load(self):
        # OR of (a_i & b_i) with all a's ordered before all b's is the
        # classic exponential-order function: ~2^10 nodes, far past the
        # arena's initial 1024-slot unique table.
        bdd = _arena_cls()()
        a_vars = bdd.add_vars("a%d" % k for k in range(10))
        b_vars = bdd.add_vars("b%d" % k for k in range(10))
        acc = bdd.false
        for a, b in zip(a_vars, b_vars):
            acc |= a & b
        assert bdd.manager.unique_table_stats()["resizes"] > 0
        assert bdd.manager.invariant_violations() == []

    def test_gc_reclaims_and_keeps_invariants(self):
        bdd = _fresh(_arena_cls())
        a, b = bdd.var("a"), bdd.var("b")
        junk = [a ^ b, a & b, a | b]
        before = len(bdd)
        del junk
        bdd.manager.collect_garbage()
        assert len(bdd) < before
        assert bdd.manager.invariant_violations() == []

    def test_cache_stats_same_shape_as_dict_backend(self):
        arena, current = _fresh(_arena_cls()), _fresh(Bdd)
        for bdd in (arena, current):
            keep = bdd.var("a") & bdd.var("b")
        a_stats, c_stats = arena.cache_stats(), current.cache_stats()
        assert set(a_stats) == set(c_stats) == {"ops", "total"}
        assert set(a_stats["ops"]) == set(c_stats["ops"])

    def test_var_node_counts_agree(self):
        arena, current = _fresh(_arena_cls()), _fresh(Bdd)
        results = []
        for bdd in (arena, current):
            a, b, c = (bdd.var(n) for n in "abc")
            keep = (a & b) ^ c
            results.append(bdd.manager.var_node_counts())
        assert results[0] == results[1]

    def test_budget_governs_arena(self):
        from repro.resilience.budget import Budget, BudgetExceededError
        bdd = _arena_cls()()
        xs = bdd.add_vars("abcdefgh")
        bdd.set_budget(Budget(max_live_nodes=30))
        with pytest.raises(BudgetExceededError) as info:
            acc = bdd.false
            for i, x in enumerate(xs):
                acc = acc | (x & xs[(i + 3) % len(xs)])
        assert info.value.resource == "live_nodes"
        assert bdd.manager.invariant_violations() == []


class TestBackendRegistry:
    def test_normalize_folds_default(self):
        assert normalize_backend(None) is None
        assert normalize_backend("") is None
        assert normalize_backend("dict") is None
        assert normalize_backend("arena") == "arena"
        with pytest.raises(ValueError):
            normalize_backend("cudd")

    def test_resolve_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "legacy")
        assert resolve_backend("arena") == "arena"
        assert resolve_backend(None) == "legacy"
        monkeypatch.delenv(BACKEND_ENV)
        assert resolve_backend(None) == "dict"

    def test_make_bdd_classes(self):
        assert type(make_bdd()) is Bdd
        assert type(make_bdd("arena")) is _arena_cls()
        assert backend_class("dict") is Bdd

    def test_ladder_backend_mutually_exclusive_with_bdd(self):
        from repro.core.ladder import run_ladder
        from repro.generators import figure1
        spec, partial = figure1()
        with pytest.raises(ValueError):
            run_ladder(spec, partial, patterns=8, bdd=Bdd(),
                       backend="arena")


@pytest.mark.parametrize("figure", ["figure1", "figure2a", "figure3b"])
def test_ladder_verdicts_identical_across_backends(figure):
    """run_ladder agrees rung by rung on dict and arena backends."""
    from repro import generators
    from repro.core.ladder import run_ladder

    spec, partial = getattr(generators, figure)()
    runs = {}
    for backend in (None, "arena"):
        results = run_ladder(spec, partial, patterns=64, seed=5,
                             backend=backend)
        runs[backend] = [(r.check, r.outcome, r.error_found,
                          r.counterexample, r.failing_output)
                         for r in results]
    assert runs[None] == runs["arena"]


def test_arena_selfchecks_under_repro_debug():
    """REPRO_DEBUG=1 runs the sanitizer after mutating entry points."""
    env = os.environ.get("REPRO_DEBUG")
    os.environ["REPRO_DEBUG"] = "1"
    try:
        bdd = _fresh(_arena_cls())
        a, b, c = (bdd.var(n) for n in "abc")
        keep = (a & b) | (b ^ c)
        bdd.manager.collect_garbage()
        bdd.reorder()
        assert bdd.manager.invariant_violations() == []
    finally:
        if env is None:
            del os.environ["REPRO_DEBUG"]
        else:
            os.environ["REPRO_DEBUG"] = env


def test_unavailable_diagnostic_is_structured(monkeypatch):
    """Without numpy the arena refuses with a machine-readable reason."""
    import repro.bdd.arena as arena_mod
    monkeypatch.setattr(arena_mod, "_np", None)
    assert not arena_mod.arena_available()
    with pytest.raises(arena_mod.ArenaUnavailableError) as err:
        arena_mod.ArenaManager()
    diag = err.value.diagnostic
    assert diag["error"] == "arena-backend-unavailable"
    assert "numpy" in diag["reason"]
    assert "hint" in diag
