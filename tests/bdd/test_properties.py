"""Property-based tests of the BDD package against a direct evaluator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import Bdd, set_order

NAMES = ["v0", "v1", "v2", "v3", "v4"]


# --- random Boolean expression trees ---------------------------------

def expr_strategy(depth=4):
    leaf = st.one_of(
        st.sampled_from([("var", n) for n in NAMES]),
        st.sampled_from([("const", False), ("const", True)]),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.sampled_from(["and", "or", "xor"]),
                      children, children),
            st.tuples(st.just("ite"), children, children, children),
        )

    return st.recursive(leaf, extend, max_leaves=12)


def eval_expr(expr, asg):
    op = expr[0]
    if op == "var":
        return asg[expr[1]]
    if op == "const":
        return expr[1]
    if op == "not":
        return not eval_expr(expr[1], asg)
    if op == "and":
        return eval_expr(expr[1], asg) and eval_expr(expr[2], asg)
    if op == "or":
        return eval_expr(expr[1], asg) or eval_expr(expr[2], asg)
    if op == "xor":
        return eval_expr(expr[1], asg) != eval_expr(expr[2], asg)
    if op == "ite":
        return (eval_expr(expr[2], asg) if eval_expr(expr[1], asg)
                else eval_expr(expr[3], asg))
    raise AssertionError(op)


def build_bdd(bdd, expr):
    op = expr[0]
    if op == "var":
        return bdd.var(expr[1])
    if op == "const":
        return bdd.constant(expr[1])
    if op == "not":
        return ~build_bdd(bdd, expr[1])
    if op == "and":
        return build_bdd(bdd, expr[1]) & build_bdd(bdd, expr[2])
    if op == "or":
        return build_bdd(bdd, expr[1]) | build_bdd(bdd, expr[2])
    if op == "xor":
        return build_bdd(bdd, expr[1]) ^ build_bdd(bdd, expr[2])
    if op == "ite":
        return build_bdd(bdd, expr[1]).ite(build_bdd(bdd, expr[2]),
                                           build_bdd(bdd, expr[3]))
    raise AssertionError(op)


def assignments():
    for bits in range(1 << len(NAMES)):
        yield {n: bool((bits >> i) & 1) for i, n in enumerate(NAMES)}


@settings(max_examples=60, deadline=None)
@given(expr_strategy())
def test_bdd_matches_direct_evaluation(expr):
    bdd = Bdd()
    bdd.add_vars(NAMES)
    f = build_bdd(bdd, expr)
    for asg in assignments():
        assert f.evaluate(asg) == eval_expr(expr, asg)


@settings(max_examples=40, deadline=None)
@given(expr_strategy())
def test_sat_count_matches_brute_force(expr):
    bdd = Bdd()
    bdd.add_vars(NAMES)
    f = build_bdd(bdd, expr)
    brute = sum(eval_expr(expr, asg) for asg in assignments())
    assert f.sat_count() == brute


@settings(max_examples=40, deadline=None)
@given(expr_strategy(), st.sets(st.sampled_from(NAMES)))
def test_exists_matches_brute_force(expr, qvars):
    bdd = Bdd()
    bdd.add_vars(NAMES)
    f = build_bdd(bdd, expr)
    g = f.exists(qvars)
    free = [n for n in NAMES if n not in qvars]
    for asg in assignments():
        want = False
        for bits in range(1 << len(qvars)):
            sub = dict(asg)
            for i, q in enumerate(sorted(qvars)):
                sub[q] = bool((bits >> i) & 1)
            if eval_expr(expr, sub):
                want = True
                break
        assert g.evaluate(asg) == want


@settings(max_examples=40, deadline=None)
@given(expr_strategy(), st.permutations(NAMES))
def test_reorder_preserves_semantics(expr, perm):
    bdd = Bdd()
    bdd.add_vars(NAMES)
    f = build_bdd(bdd, expr)
    reference = [f.evaluate(asg) for asg in assignments()]
    bdd.collect_garbage()
    set_order(bdd.manager, list(perm))
    bdd.manager.check_invariants()
    assert [f.evaluate(asg) for asg in assignments()] == reference
    bdd.reorder()
    bdd.manager.check_invariants()
    assert [f.evaluate(asg) for asg in assignments()] == reference


@settings(max_examples=30, deadline=None)
@given(expr_strategy())
def test_gc_preserves_referenced_functions(expr):
    bdd = Bdd()
    bdd.add_vars(NAMES)
    f = build_bdd(bdd, expr)
    reference = [f.evaluate(asg) for asg in assignments()]
    # create garbage
    for n in NAMES:
        _ = f ^ bdd.var(n)
    bdd.collect_garbage()
    bdd.manager.check_invariants()
    assert [f.evaluate(asg) for asg in assignments()] == reference


@settings(max_examples=30, deadline=None)
@given(expr_strategy(), expr_strategy(),
       st.sets(st.sampled_from(NAMES)))
def test_and_exists_equals_composed(e1, e2, qvars):
    bdd = Bdd()
    bdd.add_vars(NAMES)
    f, g = build_bdd(bdd, e1), build_bdd(bdd, e2)
    assert f.and_exists(g, qvars) == (f & g).exists(qvars)


@settings(max_examples=30, deadline=None)
@given(expr_strategy(), st.sampled_from(NAMES))
def test_shannon_expansion(expr, var):
    bdd = Bdd()
    bdd.add_vars(NAMES)
    f = build_bdd(bdd, expr)
    v = bdd.var(var)
    expansion = (v & f.restrict({var: True})) \
        | (~v & f.restrict({var: False}))
    assert expansion == f
