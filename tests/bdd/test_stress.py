"""Stress and lifecycle tests for the BDD manager."""

import random

import pytest

from repro.bdd import Bdd


def random_ops_session(seed, steps, auto_reorder):
    """Long mixed-operation session; invariants checked along the way."""
    rng = random.Random(seed)
    bdd = Bdd(auto_reorder=auto_reorder, initial_reorder_threshold=48)
    names = ["s%d" % i for i in range(8)]
    bdd.add_vars(names)
    live = [bdd.var(n) for n in names]
    reference = {}   # function -> truth table snapshot

    def table(f):
        return tuple(
            f.evaluate({n: bool(m >> i & 1)
                        for i, n in enumerate(names)})
            for m in range(256))

    for step in range(steps):
        op = rng.randrange(7)
        if op == 0:
            f = rng.choice(live) & rng.choice(live)
        elif op == 1:
            f = rng.choice(live) | rng.choice(live)
        elif op == 2:
            f = rng.choice(live) ^ rng.choice(live)
        elif op == 3:
            f = ~rng.choice(live)
        elif op == 4:
            f = rng.choice(live).exists(rng.sample(names, 2))
        elif op == 5:
            f = rng.choice(live).ite(rng.choice(live),
                                     rng.choice(live))
        else:
            f = rng.choice(live).restrict(
                {rng.choice(names): rng.random() < 0.5})
        live.append(f)
        if len(live) > 24:
            # drop references; the dropped functions become garbage
            del live[:8]
        if step % 17 == 0:
            reference[step] = (f, table(f))
        if step % 29 == 0:
            bdd.collect_garbage()
            bdd.manager.check_invariants()
    # all snapshots still evaluate identically
    for step, (f, want) in reference.items():
        assert table(f) == want, step
    bdd.collect_garbage()
    bdd.manager.check_invariants()
    return bdd


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_long_session_without_reordering(seed):
    random_ops_session(seed, steps=150, auto_reorder=False)


@pytest.mark.parametrize("seed", [3, 4])
def test_long_session_with_auto_reordering(seed):
    bdd = random_ops_session(seed, steps=150, auto_reorder=True)
    # Either reordering fired, or the session never crossed the
    # threshold after collection — both consistent with the contract.
    assert (bdd.manager.n_reorderings >= 1
            or len(bdd) < bdd.manager.reorder_threshold)


def test_gc_threshold_adapts():
    bdd = Bdd()
    bdd.manager._gc_threshold = 64
    names = ["t%d" % i for i in range(10)]
    bdd.add_vars(names)
    acc = bdd.true
    for i in range(9):
        acc = acc & (bdd.var(names[i]) | bdd.var(names[i + 1]))
        _ = acc ^ bdd.var(names[0])
    assert bdd.manager.n_gc_runs >= 1
    bdd.manager.check_invariants()


def test_interleaved_wrapper_lifetime():
    """Dropping wrappers in odd orders never corrupts refcounts."""
    import gc

    bdd = Bdd()
    a, b, c = bdd.add_vars(["a", "b", "c"])
    prev = a ^ b
    chain = [prev]
    for _ in range(30):
        prev = (a ^ b) | (c & prev)
        chain.append(prev)
    del chain[::2]
    del prev
    gc.collect()
    bdd.collect_garbage()
    bdd.manager.check_invariants()
    assert (a & b).evaluate({"a": True, "b": True})
