"""Tests for BDD serialization."""

import pytest

from repro.bdd import (Bdd, dumps_functions, load_functions,
                       loads_functions, set_order)


def build_sample():
    bdd = Bdd()
    a, b, c = bdd.add_vars(["a", "b", "c"])
    return bdd, {"maj": (a & b) | (b & c) | (a & c),
                 "xor": a ^ b ^ c,
                 "const": bdd.true}


def truth(fn, names=("a", "b", "c")):
    return [fn.evaluate({n: bool(bits >> i & 1)
                         for i, n in enumerate(names)})
            for bits in range(1 << len(names))]


class TestRoundTrip:
    def test_same_manager_kind(self):
        bdd, fns = build_sample()
        text = dumps_functions(fns)
        fresh = Bdd()
        loaded = loads_functions(fresh, text)
        assert set(loaded) == set(fns)
        for name in fns:
            assert truth(loaded[name]) == truth(fns[name])

    def test_into_manager_with_different_order(self):
        bdd, fns = build_sample()
        text = dumps_functions(fns)
        other = Bdd()
        other.add_vars(["c", "b", "a", "unrelated"])
        loaded = loads_functions(other, text)
        for name in fns:
            assert truth(loaded[name]) == truth(fns[name])

    def test_after_reordering_source(self):
        bdd, fns = build_sample()
        reference = {k: truth(f) for k, f in fns.items()}
        bdd.collect_garbage()
        set_order(bdd.manager, ["c", "a", "b"])
        text = dumps_functions(fns)
        loaded = loads_functions(Bdd(), text)
        for name in fns:
            assert truth(loaded[name]) == reference[name]

    def test_file_round_trip(self, tmp_path):
        from repro.bdd import dump_functions

        bdd, fns = build_sample()
        path = tmp_path / "funcs.bdd"
        dump_functions(fns, str(path))
        loaded = load_functions(Bdd(), str(path))
        assert truth(loaded["maj"]) == truth(fns["maj"])


class TestErrors:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dumps_functions({})

    def test_mixed_managers_rejected(self):
        bdd1, fns1 = build_sample()
        bdd2, fns2 = build_sample()
        with pytest.raises(ValueError):
            dumps_functions({"a": fns1["maj"], "b": fns2["maj"]})

    def test_whitespace_name_rejected(self):
        bdd, fns = build_sample()
        with pytest.raises(ValueError):
            dumps_functions({"bad name": fns["maj"]})

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            loads_functions(Bdd(), "vars a\nroot f 1\n")

    def test_unknown_child_rejected(self):
        with pytest.raises(ValueError):
            loads_functions(Bdd(), "bdd 1\nvars a\nnode 5 a 0 9\n")

    def test_unknown_keyword_rejected(self):
        with pytest.raises(ValueError):
            loads_functions(Bdd(), "bdd 1\nfrobnicate\n")

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            loads_functions(Bdd(), "bdd 99\n")
