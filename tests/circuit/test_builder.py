"""Tests for the CircuitBuilder word-level helpers."""

import pytest

from repro.circuit import CircuitBuilder, CircuitError, GateType


def to_bits(value, width):
    return [bool((value >> i) & 1) for i in range(width)]


def from_bits(bits):
    return sum(int(b) << i for i, b in enumerate(bits))


class TestNaming:
    def test_fresh_avoids_existing(self):
        b = CircuitBuilder()
        b.input("n0")
        assert b.fresh() != "n0"

    def test_reserve(self):
        b = CircuitBuilder()
        b.reserve(["n0", "n1"])
        assert b.fresh() == "n2"

    def test_interleaved_inputs(self):
        b = CircuitBuilder()
        a, c = b.interleaved_inputs(("a", "b"), 3)
        assert b.circuit.inputs == ["a0", "b0", "a1", "b1", "a2", "b2"]
        assert a == ["a0", "a1", "a2"]


class TestGateHelpers:
    def test_basic_gates(self):
        b = CircuitBuilder()
        x, y = b.input("x"), b.input("y")
        pairs = {
            b.and_(x, y): lambda p, q: p and q,
            b.or_(x, y): lambda p, q: p or q,
            b.nand_(x, y): lambda p, q: not (p and q),
            b.nor_(x, y): lambda p, q: not (p or q),
            b.xor_(x, y): lambda p, q: p != q,
            b.xnor_(x, y): lambda p, q: p == q,
        }
        not_x = b.not_(x)
        buf_x = b.buf(x)
        c = b.circuit
        for net in pairs:
            c.add_output(net)
        for p in (False, True):
            for q in (False, True):
                values = c.evaluate({"x": p, "y": q}, all_nets=True)
                for net, fn in pairs.items():
                    assert values[net] == fn(p, q)
                assert values[not_x] == (not p)
                assert values[buf_x] == p

    def test_const(self):
        b = CircuitBuilder()
        b.input("x")
        one = b.const(True)
        zero = b.const(False)
        values = b.circuit.evaluate({"x": False}, all_nets=True)
        assert values[one] and not values[zero]

    def test_max_fanin_splitting(self):
        b = CircuitBuilder(max_fanin=2)
        ins = b.inputs("x", 5)
        out = b.and_(*ins)
        b.circuit.add_output(out)
        c = b.build()
        assert all(len(g.inputs) <= 2 for g in c.gates)
        assert c.evaluate({n: True for n in c.inputs})[out]
        assert not c.evaluate({**{n: True for n in c.inputs},
                               "x3": False})[out]

    def test_mux(self):
        b = CircuitBuilder()
        s, p, q = b.input("s"), b.input("p"), b.input("q")
        m = b.mux(s, p, q)
        b.circuit.add_output(m)
        for sv in (False, True):
            for pv in (False, True):
                for qv in (False, True):
                    out = b.circuit.evaluate({"s": sv, "p": pv, "q": qv})
                    assert out[m] == (qv if sv else pv)


class TestTrees:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
    def test_xor_tree_parity(self, count):
        b = CircuitBuilder()
        ins = b.inputs("x", count)
        out = b.xor_tree(ins)
        b.circuit.add_output(out)
        c = b.build()
        for bits in range(1 << count):
            asg = {("x%d" % i): bool((bits >> i) & 1)
                   for i in range(count)}
            assert c.evaluate(asg)[out] == (bin(bits).count("1") % 2 == 1)

    def test_and_or_trees(self):
        b = CircuitBuilder()
        ins = b.inputs("x", 6)
        a = b.and_tree(ins)
        o = b.or_tree(ins)
        c = b.circuit
        all_true = {n: True for n in c.inputs}
        all_false = {n: False for n in c.inputs}
        values = c.evaluate(all_true, all_nets=True)
        assert values[a] and values[o]
        values = c.evaluate(all_false, all_nets=True)
        assert not values[a] and not values[o]

    def test_tree_with_named_output(self):
        b = CircuitBuilder()
        ins = b.inputs("x", 4)
        out = b.xor_tree(ins, out="parity")
        assert out == "parity"
        single = b.and_tree([ins[0]], out="alias")
        assert single == "alias"

    def test_empty_tree_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            b.and_tree([])


class TestArithmetic:
    @pytest.mark.parametrize("width", [1, 3, 4])
    def test_ripple_adder(self, width):
        b = CircuitBuilder()
        a_bits, b_bits = b.interleaved_inputs(("a", "b"), width)
        cin = b.input("cin")
        sums, cout = b.ripple_adder(a_bits, b_bits, cin)
        c = b.circuit
        for x in range(1 << width):
            for y in range(1 << width):
                for ci in (0, 1):
                    asg = {}
                    for i in range(width):
                        asg["a%d" % i] = bool((x >> i) & 1)
                        asg["b%d" % i] = bool((y >> i) & 1)
                    asg["cin"] = bool(ci)
                    values = c.evaluate(asg, all_nets=True)
                    got = from_bits([values[s] for s in sums]) \
                        + (values[cout] << width)
                    assert got == x + y + ci

    def test_adder_without_carry_in(self):
        b = CircuitBuilder()
        a_bits, b_bits = b.interleaved_inputs(("a", "b"), 3)
        sums, cout = b.ripple_adder(a_bits, b_bits)
        c = b.circuit
        asg = {"a0": True, "a1": True, "a2": False,   # a = 3
               "b0": True, "b1": False, "b2": True}   # b = 5
        values = c.evaluate(asg, all_nets=True)
        got = from_bits([values[s] for s in sums]) + (values[cout] << 3)
        assert got == 8

    def test_width_mismatch_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            b.ripple_adder(b.inputs("a", 2), b.inputs("b", 3))

    def test_equal(self):
        b = CircuitBuilder()
        a_bits, b_bits = b.interleaved_inputs(("a", "b"), 3)
        eq = b.equal(a_bits, b_bits)
        c = b.circuit
        for x in range(8):
            for y in range(8):
                asg = {}
                for i in range(3):
                    asg["a%d" % i] = bool((x >> i) & 1)
                    asg["b%d" % i] = bool((y >> i) & 1)
                assert c.evaluate(asg, all_nets=True)[eq] == (x == y)

    def test_less_than(self):
        b = CircuitBuilder()
        a_bits, b_bits = b.interleaved_inputs(("a", "b"), 3)
        lt = b.less_than(a_bits, b_bits)
        c = b.circuit
        for x in range(8):
            for y in range(8):
                asg = {}
                for i in range(3):
                    asg["a%d" % i] = bool((x >> i) & 1)
                    asg["b%d" % i] = bool((y >> i) & 1)
                assert c.evaluate(asg, all_nets=True)[lt] == (x < y)

    def test_less_than_empty(self):
        b = CircuitBuilder()
        b.input("dummy")
        lt = b.less_than([], [])
        assert b.circuit.evaluate({"dummy": False},
                                  all_nets=True)[lt] is False


class TestOutputs:
    def test_output_renaming_buffers(self):
        b = CircuitBuilder()
        x = b.input("x")
        t = b.not_(x)
        b.output(t, "y")
        c = b.build()
        assert c.outputs == ["y"]
        assert c.evaluate({"x": False}) == {"y": True}

    def test_outputs_with_prefix(self):
        b = CircuitBuilder()
        x = b.input("x")
        nets = [b.not_(x), b.buf(x)]
        b.outputs(nets, "o")
        assert b.circuit.outputs == ["o0", "o1"]

    def test_build_validates(self):
        b = CircuitBuilder()
        b.input("x")
        b.gate(GateType.AND, ["x", "ghost"])
        with pytest.raises(CircuitError):
            b.build()
