"""Tests for the BLIF reader/writer."""

import pytest

from repro.circuit import (CircuitBuilder, CircuitError, GateType,
                           dumps_blif, loads_blif)


def exhaustive_equal(c1, c2):
    assert sorted(c1.inputs) == sorted(c2.inputs)
    assert len(c1.outputs) == len(c2.outputs)
    names = c1.inputs
    for bits in range(1 << len(names)):
        asg = {n: bool((bits >> i) & 1) for i, n in enumerate(names)}
        o1 = list(c1.evaluate(asg).values())
        o2 = [c2.evaluate(asg)[n] for n in c2.outputs]
        assert o1 == o2, asg
    return True


class TestParsing:
    def test_simple_model(self):
        circuit = loads_blif("""
            .model test
            .inputs a b
            .outputs f
            .names a b f
            11 1
            .end
        """)
        assert circuit.name == "test"
        assert circuit.inputs == ["a", "b"]
        assert circuit.evaluate({"a": True, "b": True}) == {"f": True}
        assert circuit.evaluate({"a": True, "b": False}) == {"f": False}

    def test_dont_care_rows(self):
        circuit = loads_blif("""
            .model dc
            .inputs a b c
            .outputs f
            .names a b c f
            1-- 1
            -11 1
            .end
        """)
        assert circuit.evaluate({"a": True, "b": False, "c": False})["f"]
        assert circuit.evaluate({"a": False, "b": True, "c": True})["f"]
        assert not circuit.evaluate(
            {"a": False, "b": True, "c": False})["f"]

    def test_off_set_cover(self):
        circuit = loads_blif("""
            .model offset
            .inputs a b
            .outputs f
            .names a b f
            11 0
            .end
        """)
        # f is the complement of a&b
        assert circuit.evaluate({"a": True, "b": True}) == {"f": False}
        assert circuit.evaluate({"a": False, "b": True}) == {"f": True}

    def test_constants(self):
        circuit = loads_blif("""
            .model consts
            .inputs a
            .outputs one zero
            .names one
            1
            .names zero
            .end
        """)
        out = circuit.evaluate({"a": False})
        assert out == {"one": True, "zero": False}

    def test_comments_and_continuations(self):
        circuit = loads_blif(
            ".model c  # comment\n"
            ".inputs \\\na b\n"
            ".outputs f\n"
            ".names a b f\n"
            "11 1\n"
            ".end\n")
        assert circuit.inputs == ["a", "b"]

    def test_unsupported_construct_rejected(self):
        with pytest.raises(CircuitError):
            loads_blif(".model x\n.latch a b\n.end")

    def test_cover_row_outside_names_rejected(self):
        with pytest.raises(CircuitError):
            loads_blif(".model x\n.inputs a\n11 1\n.end")

    def test_malformed_row_rejected(self):
        with pytest.raises(CircuitError):
            loads_blif(".model x\n.inputs a\n.outputs f\n"
                       ".names a f\n1 1 extra\n.end")

    def test_wrong_width_row_rejected(self):
        with pytest.raises(CircuitError):
            loads_blif(".model x\n.inputs a b\n.outputs f\n"
                       ".names a b f\n111 1\n.end")

    def test_mixed_cover_rejected(self):
        with pytest.raises(CircuitError):
            loads_blif(".model x\n.inputs a b\n.outputs f\n"
                       ".names a b f\n11 1\n00 0\n.end")

    def test_free_nets_allowed(self):
        circuit = loads_blif("""
            .model partial
            .inputs a
            .outputs f
            .names a z f
            11 1
            .end
        """)
        assert circuit.free_nets() == ["z"]


class TestRoundTrip:
    def _adder(self):
        builder = CircuitBuilder("rt")
        a, b = builder.interleaved_inputs(("a", "b"), 3)
        sums, cout = builder.ripple_adder(a, b)
        builder.outputs(sums, "s")
        builder.output(cout, "co")
        return builder.build()

    def test_adder_roundtrip(self):
        original = self._adder()
        recovered = loads_blif(dumps_blif(original))
        exhaustive_equal(original, recovered)

    def test_all_gate_types_roundtrip(self):
        builder = CircuitBuilder("gates")
        x, y, z = builder.input("x"), builder.input("y"), builder.input("z")
        builder.output(builder.and_(x, y, z), "o_and")
        builder.output(builder.or_(x, y, z), "o_or")
        builder.output(builder.nand_(x, y), "o_nand")
        builder.output(builder.nor_(x, y), "o_nor")
        builder.output(builder.xor_(x, y, z), "o_xor")
        builder.output(builder.xnor_(x, y), "o_xnor")
        builder.output(builder.not_(x), "o_not")
        builder.output(builder.buf(y), "o_buf")
        builder.output(builder.const(True), "o_one")
        builder.output(builder.const(False), "o_zero")
        original = builder.build()
        recovered = loads_blif(dumps_blif(original))
        exhaustive_equal(original, recovered)

    def test_partial_implementation_roundtrip(self):
        builder = CircuitBuilder("p")
        a = builder.input("a")
        builder.output(builder.and_(a, "boxout"), "f")
        circuit = builder.circuit
        circuit.validate(allow_free=True)
        text = dumps_blif(circuit)
        recovered = loads_blif(text)
        # free nets become inputs in BLIF; function is preserved
        assert recovered.evaluate({"a": True, "boxout": True})["f"]
