"""Fuzzing the text parsers: garbage must raise cleanly, never crash."""

from hypothesis import given, settings, strategies as st

from repro.circuit import CircuitError, loads_bench, loads_blif
from repro.sat.dimacs import loads_dimacs

_TEXT = st.text(
    alphabet=st.sampled_from(
        list("abcxyz0123456789 .\n\t-=(),#%pcnf_") + ["\\"]),
    max_size=300)


@settings(max_examples=120, deadline=None)
@given(_TEXT)
def test_blif_parser_never_crashes(text):
    try:
        circuit = loads_blif(text)
    except (CircuitError, ValueError):
        return
    circuit.validate(allow_free=True)


@settings(max_examples=120, deadline=None)
@given(_TEXT)
def test_bench_parser_never_crashes(text):
    try:
        circuit = loads_bench(text)
    except (CircuitError, ValueError):
        return
    circuit.validate(allow_free=True)


@settings(max_examples=120, deadline=None)
@given(_TEXT)
def test_dimacs_parser_never_crashes(text):
    try:
        cnf = loads_dimacs(text)
    except (CircuitError, ValueError):
        return
    assert cnf.num_vars >= 0


@settings(max_examples=60, deadline=None)
@given(_TEXT)
def test_bdd_loader_never_crashes(text):
    """Only ValueError may escape; anything else is a loader bug."""
    from repro.bdd import Bdd, loads_functions

    try:
        loads_functions(Bdd(), text)
    except ValueError:
        pass
