"""Fuzzing the text parsers: garbage must raise cleanly, never crash."""

from hypothesis import given, settings, strategies as st

from repro.circuit import CircuitError, loads_bench, loads_blif
from repro.sat.dimacs import loads_dimacs

_TEXT = st.text(
    alphabet=st.sampled_from(
        list("abcxyz0123456789 .\n\t-=(),#%pcnf_") + ["\\"]),
    max_size=300)


@settings(max_examples=120, deadline=None)
@given(_TEXT)
def test_blif_parser_never_crashes(text):
    try:
        circuit = loads_blif(text)
    except (CircuitError, ValueError):
        return
    circuit.validate(allow_free=True)


@settings(max_examples=120, deadline=None)
@given(_TEXT)
def test_bench_parser_never_crashes(text):
    try:
        circuit = loads_bench(text)
    except (CircuitError, ValueError):
        return
    circuit.validate(allow_free=True)


@settings(max_examples=120, deadline=None)
@given(_TEXT)
def test_dimacs_parser_never_crashes(text):
    try:
        cnf = loads_dimacs(text)
    except (CircuitError, ValueError):
        return
    assert cnf.num_vars >= 0


@settings(max_examples=60, deadline=None)
@given(_TEXT)
def test_bdd_loader_never_crashes(text):
    """Only ValueError may escape; anything else is a loader bug."""
    from repro.bdd import Bdd, loads_functions

    try:
        loads_functions(Bdd(), text)
    except ValueError:
        pass


# ----------------------------------------------------------------------
# Regression: duplicate definitions must raise in strict mode and be
# recorded (first definition kept) in permissive lint mode.
# ----------------------------------------------------------------------

import pytest

from repro.circuit import SourceMap, loads_verilog

_DUP_NAMES = """\
.model twice
.inputs a b
.outputs f
.names a b f
11 1
.names a f
1 1
.end
"""

_DUP_BENCH = """\
INPUT(a)
OUTPUT(f)
f = NOT(a)
f = BUF(a)
"""


def test_blif_duplicate_names_rejected_strict():
    with pytest.raises(CircuitError, match=r"line 6: duplicate \.names"):
        loads_blif(_DUP_NAMES)


def test_blif_duplicate_names_recorded_permissive():
    source = SourceMap(file="twice.blif")
    circuit = loads_blif(_DUP_NAMES, source_map=source, strict=False)
    events = [e for e in source.events
              if e.rule == "multiply-driven-net"]
    assert len(events) == 1
    assert events[0].line == 6
    assert events[0].nets == ("f",)
    # The first cover wins; the duplicate's rows are swallowed.
    assert circuit.evaluate({"a": True, "b": False})["f"] is False
    assert circuit.evaluate({"a": True, "b": True})["f"] is True


def test_blif_permissive_requires_source_map():
    with pytest.raises(ValueError):
        loads_blif(_DUP_NAMES, strict=False)


def test_blif_shadowed_input_strict_and_permissive():
    text = (".model s\n.inputs a\n.outputs f\n"
            ".names a\n1\n.names a f\n1 1\n.end\n")
    with pytest.raises(CircuitError, match="line 4"):
        loads_blif(text)
    source = SourceMap(file="s.blif")
    loads_blif(text, source_map=source, strict=False)
    assert [e.rule for e in source.events] == ["shadowed-input"]


def test_bench_duplicate_driver_strict_and_permissive():
    with pytest.raises(CircuitError, match="line 4"):
        loads_bench(_DUP_BENCH)
    source = SourceMap(file="dup.bench")
    circuit = loads_bench(_DUP_BENCH, source_map=source, strict=False)
    assert [e.rule for e in source.events] == ["multiply-driven-net"]
    assert circuit.evaluate({"a": True})["f"] is False  # NOT won


def test_verilog_duplicate_driver_strict_and_permissive():
    text = ("module m (a, f);\n  input a;\n  output f;\n"
            "  not g0 (f, a);\n  buf g1 (f, a);\nendmodule\n")
    with pytest.raises(CircuitError, match="line 5"):
        loads_verilog(text)
    source = SourceMap(file="dup.v")
    circuit = loads_verilog(text, source_map=source, strict=False)
    assert [e.rule for e in source.events] == ["multiply-driven-net"]
    assert circuit.evaluate({"a": True})["f"] is False  # NOT won
