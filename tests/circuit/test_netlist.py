"""Tests for the Circuit netlist model."""

import pytest

from repro.circuit import Circuit, CircuitError, Gate, GateType


def small_circuit():
    c = Circuit("small")
    c.add_inputs(["a", "b", "c"])
    c.add_gate("t1", GateType.AND, ["a", "b"])
    c.add_gate("t2", GateType.XOR, ["t1", "c"])
    c.add_gate("out", GateType.NOT, ["t2"])
    c.add_output("out")
    return c


class TestConstruction:
    def test_duplicate_input_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_input("a")

    def test_redriving_net_rejected(self):
        c = small_circuit()
        with pytest.raises(CircuitError):
            c.add_gate("t1", GateType.OR, ["a"])
        with pytest.raises(CircuitError):
            c.add_gate("a", GateType.OR, ["b"])

    def test_gate_arity_enforced(self):
        with pytest.raises(CircuitError):
            Gate("x", GateType.NOT, ("a", "b"))
        with pytest.raises(CircuitError):
            Gate("x", GateType.CONST0, ("a",))

    def test_duplicate_output_rejected(self):
        c = small_circuit()
        with pytest.raises(CircuitError):
            c.add_output("out")

    def test_remove_gate(self):
        c = small_circuit()
        gate = c.remove_gate("t2")
        assert gate.gtype is GateType.XOR
        assert "t2" in c.free_nets()
        with pytest.raises(CircuitError):
            c.remove_gate("t2")

    def test_replace_gate(self):
        c = small_circuit()
        c.replace_gate(Gate("t1", GateType.OR, ("a", "b")))
        assert c.gate("t1").gtype is GateType.OR
        with pytest.raises(CircuitError):
            c.replace_gate(Gate("nope", GateType.OR, ("a",)))

    def test_gate_lookup_error(self):
        c = small_circuit()
        with pytest.raises(CircuitError):
            c.gate("a")          # input, not a gate

    def test_accessors(self):
        c = small_circuit()
        assert c.inputs == ["a", "b", "c"]
        assert c.outputs == ["out"]
        assert c.num_gates == 3
        assert c.is_input("a") and not c.is_input("t1")
        assert c.drives("t1") and not c.drives("a")
        assert set(c.nets()) == {"a", "b", "c", "t1", "t2", "out"}


class TestStructure:
    def test_topological_order(self):
        c = small_circuit()
        order = c.topological_order()
        assert order.index("t1") < order.index("t2") < order.index("out")

    def test_cycle_detection(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("x", GateType.AND, ["a", "y"])
        c.add_gate("y", GateType.OR, ["x", "a"])
        with pytest.raises(CircuitError):
            c.topological_order()

    def test_cycle_error_carries_path_witness(self):
        from repro.circuit import CombinationalCycleError

        c = Circuit()
        c.add_input("a")
        c.add_gate("p", GateType.NOT, ["a"])
        c.add_gate("x", GateType.AND, ["p", "z"])
        c.add_gate("y", GateType.OR, ["x", "a"])
        c.add_gate("z", GateType.BUF, ["y"])
        c.add_output("z")
        with pytest.raises(CombinationalCycleError) as excinfo:
            c.topological_order()
        cycle = excinfo.value.cycle
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"x", "y", "z"}
        # Every hop in the witness is a real netlist edge (fan-in
        # direction: each gate reads the next net in the list).
        for src, dst in zip(cycle, cycle[1:]):
            assert dst in c.gate(src).inputs
        assert " -> ".join(cycle) in str(excinfo.value)

    def test_find_cycle_none_on_dag(self):
        assert small_circuit().find_cycle() is None

    def test_free_nets(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", GateType.AND, ["a", "bb_out"])
        c.add_output("g")
        assert c.free_nets() == ["bb_out"]
        with pytest.raises(CircuitError):
            c.validate()
        c.validate(allow_free=True)

    def test_free_output_net(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("floating")
        assert c.free_nets() == ["floating"]

    def test_levelize_and_depth(self):
        c = small_circuit()
        levels = c.levelize()
        assert levels["a"] == 0
        assert levels["t1"] == 1
        assert levels["t2"] == 2
        assert c.depth() == 3

    def test_cone(self):
        c = small_circuit()
        cone = c.cone(["t1"])
        assert cone == {"t1", "a", "b"}
        assert c.cone(["out"]) == {"out", "t2", "t1", "a", "b", "c"}

    def test_fanout_map(self):
        c = small_circuit()
        fan = c.fanout_map()
        assert fan["t1"] == ["t2"]
        assert fan["a"] == ["t1"]

    def test_dangling_output_rejected(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("a")
        c.validate()  # inputs may be outputs
        c2 = Circuit()
        c2.add_input("x")
        c2.add_gate("g", GateType.BUF, ["x"])
        c2.add_output("g")
        c2.validate()


class TestEvaluation:
    def test_evaluate(self):
        c = small_circuit()
        out = c.evaluate({"a": True, "b": True, "c": False})
        assert out == {"out": not (True ^ False)}

    def test_evaluate_all_nets(self):
        c = small_circuit()
        values = c.evaluate({"a": True, "b": False, "c": True},
                            all_nets=True)
        assert values["t1"] is False
        assert values["t2"] is True

    def test_evaluate_vector(self):
        c = small_circuit()
        assert c.evaluate_vector([True, True, True]) == [True]
        with pytest.raises(CircuitError):
            c.evaluate_vector([True])

    def test_missing_input_rejected(self):
        c = small_circuit()
        with pytest.raises(CircuitError):
            c.evaluate({"a": True})

    def test_free_net_requires_value(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", GateType.AND, ["a", "z"])
        c.add_output("g")
        with pytest.raises(CircuitError):
            c.evaluate({"a": True})
        assert c.evaluate({"a": True, "z": True}) == {"g": True}


class TestTransformations:
    def test_copy_is_independent(self):
        c = small_circuit()
        c2 = c.copy()
        c2.replace_gate(Gate("t1", GateType.OR, ("a", "b")))
        assert c.gate("t1").gtype is GateType.AND

    def test_renamed(self):
        c = small_circuit()
        r = c.renamed({"a": "alpha", "out": "result"})
        assert r.inputs == ["alpha", "b", "c"]
        assert r.outputs == ["result"]
        assert (r.evaluate({"alpha": True, "b": True, "c": False})
                == {"result": False})
        assert (r.evaluate({"alpha": True, "b": True, "c": True})
                == {"result": True})

    def test_with_input_order(self):
        c = small_circuit()
        r = c.with_input_order(["c", "a", "b"])
        assert r.inputs == ["c", "a", "b"]
        asg = {"a": True, "b": True, "c": False}
        assert r.evaluate(asg) == c.evaluate(asg)
        with pytest.raises(CircuitError):
            c.with_input_order(["a", "b"])

    def test_stats(self):
        c = small_circuit()
        stats = c.stats()
        assert stats["inputs"] == 3
        assert stats["gates"] == 3
        assert stats["gates_and"] == 1

    def test_repr(self):
        assert "small" in repr(small_circuit())
