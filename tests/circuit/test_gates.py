"""Tests for gate types and two-valued gate evaluation."""

import pytest

from repro.circuit import GateType, eval_gate
from repro.circuit.gates import INVERTIBLE, VARIADIC


class TestEvalGate:
    @pytest.mark.parametrize("gtype,table", [
        (GateType.AND, {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
        (GateType.OR, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
        (GateType.NAND, {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
        (GateType.NOR, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}),
        (GateType.XOR, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
        (GateType.XNOR, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
    ])
    def test_binary_tables(self, gtype, table):
        for ins, want in table.items():
            got = eval_gate(gtype, [bool(b) for b in ins])
            assert got == bool(want), (gtype, ins)

    def test_wide_gates(self):
        assert eval_gate(GateType.AND, [True] * 5)
        assert not eval_gate(GateType.AND, [True] * 4 + [False])
        assert eval_gate(GateType.XOR, [True, True, True])
        assert not eval_gate(GateType.XOR, [True, True, True, True])
        assert eval_gate(GateType.XNOR, [True, True])

    def test_unary_and_const(self):
        assert eval_gate(GateType.NOT, [False])
        assert eval_gate(GateType.BUF, [True])
        assert not eval_gate(GateType.CONST0, [])
        assert eval_gate(GateType.CONST1, [])


class TestGateTypeMeta:
    def test_arity_rules(self):
        assert GateType.AND.arity_ok(1)
        assert GateType.AND.arity_ok(7)
        assert not GateType.NOT.arity_ok(2)
        assert GateType.NOT.arity_ok(1)
        assert GateType.CONST0.arity_ok(0)
        assert not GateType.CONST1.arity_ok(1)

    def test_dual_pairs(self):
        assert GateType.AND.dual is GateType.OR
        assert GateType.OR.dual is GateType.AND
        assert GateType.NAND.dual is GateType.NOR
        assert GateType.XOR.dual is GateType.XNOR
        with pytest.raises(ValueError):
            GateType.NOT.dual

    def test_invertible_is_involution(self):
        for gtype, inverse in INVERTIBLE.items():
            assert INVERTIBLE[inverse] is gtype

    def test_invertible_semantics(self):
        for gtype, inverse in INVERTIBLE.items():
            if gtype in (GateType.CONST0, GateType.CONST1):
                assert eval_gate(gtype, []) != eval_gate(inverse, [])
                continue
            arity = 1 if gtype in (GateType.NOT, GateType.BUF) else 2
            for bits in range(1 << arity):
                ins = [bool((bits >> i) & 1) for i in range(arity)]
                assert eval_gate(gtype, ins) != eval_gate(inverse, ins)

    def test_variadic_contents(self):
        assert GateType.AND in VARIADIC
        assert GateType.NOT not in VARIADIC
