"""Tests for the structural Verilog writer."""

import re

import pytest

from repro.circuit import CircuitBuilder, CircuitError, GateType, \
    dumps_verilog
from repro.generators import alu4_like


class TestDumpsVerilog:
    def test_module_structure(self):
        text = dumps_verilog(alu4_like())
        assert text.splitlines()[1].startswith("module alu4 (")
        assert text.rstrip().endswith("endmodule")
        assert text.count("module") == 2  # module + endmodule

    def test_every_gate_emitted(self):
        circuit = alu4_like()
        text = dumps_verilog(circuit)
        instances = re.findall(r"^\s+(and|or|nand|nor|xor|xnor|not|buf)"
                               r"\s+g\d+", text, re.MULTILINE)
        assert len(instances) == circuit.num_gates

    def test_constants_become_assigns(self):
        builder = CircuitBuilder("c")
        builder.input("a")
        builder.output(builder.const(True), "one")
        builder.output(builder.const(False), "zero")
        text = dumps_verilog(builder.build())
        assert "1'b1" in text and "1'b0" in text

    def test_identifier_sanitization(self):
        builder = CircuitBuilder("weird")
        builder.input("a.b")          # illegal Verilog identifier
        builder.input("module")       # keyword
        builder.output(builder.and_("a.b", "module"), "f")
        text = dumps_verilog(builder.build())
        assert "a.b" not in text.replace("// was 'a.b'", "")
        assert re.search(r"input\s+a_b;", text)
        assert re.search(r"input\s+n_module;", text)

    def test_free_nets_marked(self):
        builder = CircuitBuilder("p")
        builder.input("a")
        builder.output(builder.and_("a", "boxnet"), "f")
        circuit = builder.circuit
        circuit.validate(allow_free=True)
        text = dumps_verilog(circuit)
        assert "Black Box outputs" in text
        assert re.search(r"input\s+boxnet;", text)

    def test_module_name_override(self):
        text = dumps_verilog(alu4_like(), module_name="my_alu")
        assert "module my_alu (" in text

    def test_name_collision_resolved(self):
        builder = CircuitBuilder("clash")
        builder.input("x.y")
        builder.input("x_y")
        builder.output(builder.or_("x.y", "x_y"), "f")
        text = dumps_verilog(builder.build())
        assert re.search(r"input\s+x_y;", text)
        assert re.search(r"input\s+x_y_1;", text)


class TestReadVerilog:
    """The reader accepts everything the writer emits."""

    def _round_trip(self, circuit):
        from repro.circuit import loads_verilog

        return loads_verilog(dumps_verilog(circuit))

    def test_round_trip_preserves_semantics(self):
        import itertools

        builder = CircuitBuilder("rt")
        a, b, c = (builder.input(n) for n in "abc")
        builder.output(builder.xor_(builder.and_(a, b), c), "f")
        original = builder.circuit
        parsed = self._round_trip(original)
        # The writer suffixes outputs with _o; compare functionally.
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip("abc", bits))
            assert parsed.evaluate(assignment)["f_o"] \
                == original.evaluate(assignment)["f"]

    def test_round_trip_benchmark(self):
        original = alu4_like()
        parsed = self._round_trip(original)
        assert len(parsed.inputs) == len(original.inputs)
        assert len(parsed.outputs) == len(original.outputs)
        parsed.validate(allow_free=True)

    def test_constant_assigns_parse(self):
        from repro.circuit import loads_verilog

        text = ("module k (f);\n  output f;\n  wire t;\n"
                "  assign t = 1'b1;\n  assign f = t;\nendmodule\n")
        circuit = loads_verilog(text)
        assert circuit.evaluate({})["f"] is True

    def test_missing_module_rejected(self):
        from repro.circuit import loads_verilog

        with pytest.raises(CircuitError, match="module"):
            loads_verilog("wire a;\n")

    def test_unsupported_statement_rejected(self):
        from repro.circuit import loads_verilog

        with pytest.raises(CircuitError, match="line 2"):
            loads_verilog("module m (a);\n  always @(a) begin end\n"
                          "endmodule\n")
