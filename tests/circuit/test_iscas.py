"""Tests for the ISCAS .bench reader/writer."""

import pytest

from repro.circuit import (CircuitBuilder, CircuitError, GateType,
                           dumps_bench, loads_bench)


SAMPLE = """
# a comment
INPUT(a)
INPUT(b)
OUTPUT(f)
g1 = AND(a, b)
g2 = NOT(g1)
f = OR(g2, a)
"""


class TestParsing:
    def test_sample(self):
        c = loads_bench(SAMPLE)
        assert c.inputs == ["a", "b"]
        assert c.outputs == ["f"]
        assert c.num_gates == 3
        assert c.evaluate({"a": False, "b": True}) == {"f": True}

    def test_gate_aliases(self):
        c = loads_bench("INPUT(a)\nOUTPUT(f)\nt = INV(a)\nf = BUFF(t)\n")
        assert c.evaluate({"a": True}) == {"f": False}

    def test_all_gate_names(self):
        text = "INPUT(a)\nINPUT(b)\n"
        gates = ["AND", "OR", "NAND", "NOR", "XOR", "XNOR"]
        for g in gates:
            text += "o_%s = %s(a, b)\n" % (g.lower(), g)
            text += "OUTPUT(o_%s)\n" % g.lower()
        c = loads_bench(text)
        out = c.evaluate({"a": True, "b": True})
        assert out["o_and"] and out["o_or"] and out["o_xnor"]
        assert not out["o_nand"] and not out["o_nor"] and not out["o_xor"]

    def test_unknown_gate_rejected(self):
        with pytest.raises(CircuitError):
            loads_bench("INPUT(a)\nf = MAJ(a, a, a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(CircuitError):
            loads_bench("this is not bench\n")

    def test_free_nets_allowed(self):
        c = loads_bench("INPUT(a)\nOUTPUT(f)\nf = AND(a, z)\n")
        assert c.free_nets() == ["z"]

    def test_whitespace_tolerance(self):
        c = loads_bench("  INPUT( a )\nOUTPUT(f)\nf  =  NOT( a )\n")
        assert c.evaluate({"a": False}) == {"f": True}


class TestDumping:
    def test_roundtrip(self):
        original = loads_bench(SAMPLE)
        recovered = loads_bench(dumps_bench(original))
        for a in (False, True):
            for b in (False, True):
                asg = {"a": a, "b": b}
                assert original.evaluate(asg) == recovered.evaluate(asg)

    def test_constants_rejected(self):
        builder = CircuitBuilder()
        builder.input("a")
        builder.output(builder.const(True), "f")
        with pytest.raises(CircuitError):
            dumps_bench(builder.circuit)

    def test_free_nets_become_marked_inputs(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        builder.output(builder.and_(a, "boxnet"), "f")
        text = dumps_bench(builder.circuit)
        assert "INPUT(boxnet)" in text
        assert "Black Box" in text
        recovered = loads_bench(text)
        assert "boxnet" in recovered.inputs
