"""Property-based tests of the circuit substrate."""

import random

from hypothesis import given, settings, strategies as st

from repro.circuit import (CircuitBuilder, GateType, dumps_bench,
                           dumps_blif, loads_bench, loads_blif,
                           expand_to_two_input, optimize, strip_buffers)
from repro.core import check_equivalence


def random_circuit(seed, with_constants=False):
    rng = random.Random(seed)
    builder = CircuitBuilder("rc%d" % seed)
    pool = [builder.input("x%d" % i) for i in range(rng.randint(2, 5))]
    if with_constants:
        pool.append(builder.const(rng.random() < 0.5))
    kinds = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
             GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF]
    for _ in range(rng.randint(2, 14)):
        gtype = rng.choice(kinds)
        fanin = 1 if gtype in (GateType.NOT, GateType.BUF) \
            else rng.randint(2, min(4, len(pool)))
        pool.append(builder.gate(gtype, rng.sample(pool, fanin)))
    for k in range(rng.randint(1, 3)):
        builder.output(builder.buf(pool[-(k + 1)]), "f%d" % k)
    return builder.build()


def equivalent_exhaustive(a, b):
    names = a.inputs
    for bits in range(1 << len(names)):
        asg = {n: bool(bits >> i & 1) for i, n in enumerate(names)}
        av = [a.evaluate(asg)[n] for n in a.outputs]
        bv = [b.evaluate(asg)[n] for n in b.outputs]
        if av != bv:
            return False
    return True


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_blif_round_trip_preserves_function(seed):
    original = random_circuit(seed, with_constants=True)
    recovered = loads_blif(dumps_blif(original))
    assert equivalent_exhaustive(original, recovered)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_bench_round_trip_preserves_function(seed):
    original = random_circuit(seed, with_constants=False)
    recovered = loads_bench(dumps_bench(original))
    assert equivalent_exhaustive(original, recovered)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_transforms_preserve_function(seed):
    original = random_circuit(seed, with_constants=True)
    for transform in (expand_to_two_input, strip_buffers, optimize):
        changed = transform(original)
        assert check_equivalence(original, changed).equivalent, \
            transform.__name__


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_topological_order_is_consistent(seed):
    circuit = random_circuit(seed)
    order = circuit.topological_order()
    position = {net: i for i, net in enumerate(order)}
    for net in order:
        for src in circuit.gate(net).inputs:
            if circuit.drives(src):
                assert position[src] < position[net]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_levelize_bounds_depth(seed):
    circuit = random_circuit(seed)
    levels = circuit.levelize()
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        for src in gate.inputs:
            assert levels[src] < levels[net]
