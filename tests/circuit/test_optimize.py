"""Tests for the netlist clean-up passes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import (CircuitBuilder, GateType, merge_duplicates,
                           optimize, propagate_constants, sweep_dead)
from repro.core import check_equivalence
from repro.generators import alu4_like, comp_like


class TestPropagateConstants:
    def test_folds_controlled_gates(self):
        builder = CircuitBuilder()
        x = builder.input("x")
        zero = builder.const(False)
        one = builder.const(True)
        builder.output(builder.and_(x, zero), "f_and")   # 0
        builder.output(builder.or_(x, one), "f_or")      # 1
        builder.output(builder.xor_(x, one), "f_xor")    # ~x
        builder.output(builder.nand_(x, zero), "f_nand")  # 1
        circuit = builder.build()
        folded = propagate_constants(circuit)
        assert check_equivalence(circuit, folded).equivalent
        # the xor with constant must have become an inverter
        kinds = {g.gtype for g in folded.gates}
        assert GateType.XOR not in kinds

    def test_neutral_inputs_dropped(self):
        builder = CircuitBuilder()
        x, y = builder.input("x"), builder.input("y")
        one = builder.const(True)
        builder.output(builder.and_(x, y, one), "f")
        circuit = builder.build()
        folded = propagate_constants(circuit)
        gate = folded.gate(folded.gates[-1].output) \
            if folded.gates else None
        assert check_equivalence(circuit, folded).equivalent
        and_gates = [g for g in folded.gates
                     if g.gtype is GateType.AND]
        assert all(len(g.inputs) == 2 for g in and_gates)

    def test_constant_output(self):
        builder = CircuitBuilder()
        builder.input("x")
        builder.output(builder.xor_("x", "x"), "f")
        circuit = builder.build()
        folded = propagate_constants(circuit)
        assert check_equivalence(circuit, folded).equivalent
        assert not folded.evaluate({"x": True})["f"]

    def test_free_nets_untouched(self):
        builder = CircuitBuilder()
        x = builder.input("x")
        builder.output(builder.and_(x, "boxnet"), "f")
        circuit = builder.circuit
        circuit.validate(allow_free=True)
        folded = propagate_constants(circuit)
        assert "boxnet" in folded.free_nets()


class TestMergeDuplicates:
    def test_identical_gates_merge(self):
        builder = CircuitBuilder()
        x, y = builder.input("x"), builder.input("y")
        a = builder.and_(x, y)
        b = builder.and_(y, x)      # commutative duplicate
        builder.output(builder.xor_(a, b), "f")
        circuit = builder.build()
        merged = merge_duplicates(circuit)
        assert check_equivalence(circuit, merged).equivalent
        assert merged.evaluate({"x": True, "y": True})["f"] is False
        and_count = sum(1 for g in merged.gates
                        if g.gtype is GateType.AND)
        assert and_count == 1

    def test_output_net_preserved_via_buffer(self):
        builder = CircuitBuilder()
        x, y = builder.input("x"), builder.input("y")
        builder.output(builder.and_(x, y, out="g1"), "g1")
        builder.output(builder.and_(x, y, out="g2"), "g2")
        circuit = builder.build()
        merged = merge_duplicates(circuit)
        assert set(merged.outputs) == {"g1", "g2"}
        assert check_equivalence(circuit, merged).equivalent

    def test_sees_through_buffer_chains(self):
        # Regression: duplicates hidden behind BUFs did not merge —
        # AND(x, y) vs AND(buf(buf(x)), y) hashed differently because
        # buffers were kept as ordinary gates instead of resolved.
        from repro.circuit.netlist import Circuit

        circuit = Circuit("bufdup")
        circuit.add_inputs(["x", "y"])
        circuit.add_gate("b1", GateType.BUF, ["x"])
        circuit.add_gate("b2", GateType.BUF, ["b1"])
        circuit.add_gate("a1", GateType.AND, ["x", "y"])
        circuit.add_gate("a2", GateType.AND, ["b2", "y"])
        circuit.add_gate("f", GateType.XOR, ["a1", "a2"])
        circuit.add_output("f")
        merged = merge_duplicates(circuit)
        assert check_equivalence(circuit, merged).equivalent
        and_count = sum(1 for g in merged.gates
                        if g.gtype is GateType.AND)
        assert and_count == 1
        assert not any(g.gtype is GateType.BUF for g in merged.gates)

    def test_buffered_output_net_survives(self):
        # An output driven directly by a BUF must keep its net name
        # (re-materialized as a buffer) after the chain elides.
        from repro.circuit.netlist import Circuit

        circuit = Circuit("bufout")
        circuit.add_inputs(["x", "y"])
        circuit.add_gate("a", GateType.AND, ["x", "y"])
        circuit.add_gate("f", GateType.BUF, ["a"])
        circuit.add_output("f")
        merged = merge_duplicates(circuit)
        assert list(merged.outputs) == ["f"]
        assert check_equivalence(circuit, merged).equivalent


class TestSweepDead:
    def test_unobservable_gates_removed(self):
        builder = CircuitBuilder()
        x, y = builder.input("x"), builder.input("y")
        builder.output(builder.and_(x, y, out="live"), "live")
        builder.or_(x, y, out="dead")
        circuit = builder.circuit
        circuit.validate()
        swept = sweep_dead(circuit)
        assert swept.num_gates == 1
        assert check_equivalence(circuit, swept).equivalent


class TestOptimize:
    @pytest.mark.parametrize("factory", [alu4_like, comp_like])
    def test_benchmarks_shrink_and_stay_equivalent(self, factory):
        spec = factory()
        small = optimize(spec)
        assert small.num_gates <= spec.num_gates
        assert check_equivalence(spec, small).equivalent

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_random_circuits_preserved(self, seed):
        rng = random.Random(seed)
        builder = CircuitBuilder("r%d" % seed)
        pool = [builder.input("x%d" % i) for i in range(4)]
        pool.append(builder.const(rng.random() < 0.5))
        for _ in range(rng.randint(3, 15)):
            gtype = rng.choice([GateType.AND, GateType.OR, GateType.XOR,
                                GateType.NAND, GateType.NOR,
                                GateType.XNOR, GateType.NOT])
            fanin = 1 if gtype is GateType.NOT else rng.randint(1, 3)
            pool.append(builder.gate(
                gtype, [rng.choice(pool) for _ in range(fanin)]))
        builder.output(builder.buf(pool[-1]), "f0")
        builder.output(builder.buf(pool[-2]), "f1")
        circuit = builder.build()
        small = optimize(circuit)
        assert check_equivalence(circuit, small).equivalent
