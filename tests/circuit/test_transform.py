"""Tests for structural netlist transformations."""

import pytest

from repro.circuit import CircuitBuilder, GateType
from repro.circuit.transform import expand_to_two_input, strip_buffers
from repro.core import check_equivalence


def wide_gate_circuit():
    builder = CircuitBuilder("wide")
    ins = builder.inputs("x", 6)
    builder.output(builder.and_(*ins), "f_and")
    builder.output(builder.xor_(*ins), "f_xor")
    builder.output(builder.nor_(*ins[:5]), "f_nor")
    builder.output(builder.nand_(*ins[:3]), "f_nand")
    builder.output(builder.xnor_(*ins[:4]), "f_xnor")
    return builder.build()


class TestExpandToTwoInput:
    def test_fanin_bounded(self):
        wide = wide_gate_circuit()
        narrow = expand_to_two_input(wide)
        assert all(len(g.inputs) <= 2 for g in narrow.gates)

    def test_function_preserved(self):
        wide = wide_gate_circuit()
        narrow = expand_to_two_input(wide)
        assert check_equivalence(wide, narrow).equivalent

    def test_inverting_gate_keeps_inversion(self):
        builder = CircuitBuilder()
        ins = builder.inputs("x", 4)
        builder.output(builder.nor_(*ins), "f")
        wide = builder.build()
        narrow = expand_to_two_input(wide)
        assert narrow.evaluate({n: False for n in narrow.inputs})["f"]
        assert not narrow.evaluate(
            {**{n: False for n in narrow.inputs}, "x2": True})["f"]

    def test_small_gates_untouched(self):
        builder = CircuitBuilder()
        a, b = builder.input("a"), builder.input("b")
        builder.output(builder.and_(a, b), "f")
        circuit = builder.build()
        expanded = expand_to_two_input(circuit)
        assert expanded.num_gates == circuit.num_gates

    def test_partial_circuit_supported(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        builder.output(builder.and_(a, "z1", "z2"), "f")
        partial = builder.circuit
        partial.validate(allow_free=True)
        expanded = expand_to_two_input(partial)
        assert set(expanded.free_nets()) == {"z1", "z2"}


class TestStripBuffers:
    def test_buffers_removed(self):
        builder = CircuitBuilder()
        a, b = builder.input("a"), builder.input("b")
        t = builder.buf(builder.buf(builder.and_(a, b)))
        builder.output(t, "f")
        circuit = builder.build()
        stripped = strip_buffers(circuit)
        assert check_equivalence(circuit, stripped).equivalent
        inner = [g for g in stripped.gates if g.gtype is GateType.BUF
                 and g.output not in stripped.outputs]
        assert not inner

    def test_output_buffers_kept(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        builder.output(builder.not_(a), "f")
        circuit = builder.build()
        stripped = strip_buffers(circuit)
        assert stripped.outputs == ["f"]
        assert stripped.evaluate({"a": True}) == {"f": False}
