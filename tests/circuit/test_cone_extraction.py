"""Tests for standalone cone extraction."""

import pytest

from repro.circuit import CircuitBuilder, CircuitError, extract_cone
from repro.generators import alu4_like


def sample():
    builder = CircuitBuilder("s")
    a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
    t1 = builder.and_(a, b, out="t1")
    t2 = builder.xor_(t1, c, out="t2")
    builder.output(builder.not_(t2, out="f"), "f")
    builder.output(builder.or_(a, c, out="g"), "g")
    return builder.build()


class TestExtractCone:
    def test_single_output_cone(self):
        circuit = sample()
        cone = extract_cone(circuit, ["f"])
        assert set(cone.inputs) == {"a", "b", "c"}
        assert cone.outputs == ["f"]
        assert cone.num_gates == 3
        for bits in range(8):
            asg = {"a": bool(bits & 1), "b": bool(bits & 2),
                   "c": bool(bits & 4)}
            assert cone.evaluate(asg)["f"] == circuit.evaluate(asg)["f"]

    def test_cut_point_becomes_input(self):
        circuit = sample()
        cone = extract_cone(circuit, ["f"], stop_at=["t1"])
        assert "t1" in cone.inputs
        assert cone.num_gates == 2
        assert cone.evaluate({"t1": True, "c": False})["f"] is False

    def test_unrelated_logic_excluded(self):
        circuit = sample()
        cone = extract_cone(circuit, ["g"])
        assert set(cone.inputs) == {"a", "c"}
        assert cone.num_gates == 1

    def test_multiple_roots(self):
        circuit = sample()
        cone = extract_cone(circuit, ["f", "g"])
        assert cone.outputs == ["f", "g"]
        assert cone.num_gates == 4

    def test_input_root(self):
        circuit = sample()
        cone = extract_cone(circuit, ["a"])
        assert cone.outputs == ["a"]
        assert cone.inputs == ["a"]

    def test_unknown_root_rejected(self):
        with pytest.raises(CircuitError):
            extract_cone(sample(), ["ghost"])

    def test_benchmark_output_cone_matches(self):
        circuit = alu4_like()
        target = circuit.outputs[0]
        cone = extract_cone(circuit, [target])
        assert set(cone.inputs) <= set(circuit.inputs)
        import random

        rng = random.Random(0)
        for _ in range(20):
            asg = {n: bool(rng.getrandbits(1)) for n in circuit.inputs}
            sub = {n: asg[n] for n in cone.inputs}
            assert cone.evaluate(sub)[target] \
                == circuit.evaluate(asg)[target]

    def test_input_order_preserved(self):
        circuit = alu4_like()
        cone = extract_cone(circuit, [circuit.outputs[0]])
        order = {n: i for i, n in enumerate(circuit.inputs)}
        indices = [order[n] for n in cone.inputs if n in order]
        assert indices == sorted(indices)
