"""Tracing is read-only: enabling it never changes any result.

Three layers of the contract:

* ladder level — verdicts, counterexamples, node/cache stats (which
  are a function of the node ids the checks allocated) are identical
  with and without a tracer installed (hypothesis-driven over mutation
  seeds);
* campaign level — the journal a campaign writes is identical (modulo
  wall-clock timing fields) whether ``REPRO_TRACE_DIR`` is set or not,
  serially and with ``--jobs 2``;
* the per-case trace files round-trip through the JSONL reader.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ladder import run_ladder
from repro.experiments.runner import ExperimentConfig
from repro.generators import magnitude_comparator
from repro.jobs import run_campaign
from repro.jobs.journal import trace_filename
from repro.jobs.worker import clear_caches
from repro.obs import Tracer, read_jsonl, set_tracer
from repro.partial.blackbox import PartialImplementation
from repro.partial.extraction import make_partial
from repro.partial.mutations import insert_random_error

SPEC = magnitude_comparator(4)
CONFIG = ExperimentConfig(selections=1, errors=2, patterns=30,
                          benchmarks=["alu4"])


def mutated_case(mutation_seed):
    partial = make_partial(SPEC, fraction=0.3, num_boxes=1, seed=3)
    mutated, _ = insert_random_error(partial.circuit,
                                     random.Random(mutation_seed))
    return PartialImplementation(mutated, partial.boxes)


def run(partial, traced):
    tracer = Tracer() if traced else None
    previous = set_tracer(tracer)
    try:
        return run_ladder(SPEC, partial, patterns=50, seed=9,
                          stop_at_first_error=False)
    finally:
        set_tracer(previous)
        if tracer is not None:
            tracer.close_all()


def fingerprint(results):
    """Everything observable about a ladder run except wall-clock."""
    return [(r.check, r.outcome, r.error_found, r.exact,
             r.counterexample, r.failing_output, r.detail,
             {k: v for k, v in r.stats.items()})
            for r in results]


@given(mutation_seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=8, deadline=None)
def test_tracing_never_changes_ladder_results(mutation_seed):
    partial = mutated_case(mutation_seed)
    assert fingerprint(run(partial, traced=False)) \
        == fingerprint(run(partial, traced=True))


def journal_fingerprint(records):
    """A campaign's results modulo wall-clock and scheduling fields."""
    out = []
    for record in sorted(records, key=lambda r: r.case.key):
        data = record.to_dict()
        data["seconds"] = data["worker"] = data["attempt"] = None
        for check in data["checks"].values():
            check["seconds"] = None
        out.append(data)
    return out


@pytest.fixture()
def traced_env(tmp_path, monkeypatch):
    trace_dir = tmp_path / "traces"
    trace_dir.mkdir()
    monkeypatch.setenv("REPRO_TRACE_DIR", str(trace_dir))
    clear_caches()
    yield trace_dir
    clear_caches()


class TestCampaignInvariance:
    def test_journal_identical_with_tracing_serial_and_parallel(
            self, traced_env):
        traced_serial = run_campaign(CONFIG)
        traced_parallel = run_campaign(CONFIG, jobs=2)
        clear_caches()
        with pytest.MonkeyPatch.context() as patch:
            patch.delenv("REPRO_TRACE_DIR")
            plain = run_campaign(CONFIG)
        baseline = journal_fingerprint(plain.records)
        assert journal_fingerprint(traced_serial.records) == baseline
        assert journal_fingerprint(traced_parallel.records) == baseline

    def test_trace_files_round_trip_through_jsonl_reader(
            self, traced_env):
        result = run_campaign(CONFIG)
        for record in result.records:
            path = traced_env / trace_filename(record.case)
            assert path.exists()
            events = read_jsonl(str(path))
            case_spans = [e for e in events
                          if e["ph"] == "B" and e["name"] == "case"]
            assert len(case_spans) == 1
            assert case_spans[0]["args"]["benchmark"] == "alu4"
            # Well-nested: every B has its E, in stack order.
            stack = []
            for event in events:
                if event["ph"] == "B":
                    stack.append(event["name"])
                elif event["ph"] == "E":
                    assert stack.pop() == event["name"]
            assert stack == []
