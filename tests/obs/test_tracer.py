"""Tracer unit tests: spans, nesting, clocks, installation."""

import pytest

from repro.obs import Tracer, get_tracer, set_tracer


class FakeClock:
    """Deterministic clock: each reading advances by ``step`` seconds."""

    def __init__(self, step=0.001):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def phases(tracer):
    return [(e["ph"], e["name"]) for e in tracer.events]


class TestSpans:
    def test_span_emits_begin_and_end(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("work", detail=7)
        span.done(verdict="ok")
        assert phases(tracer) == [("B", "work"), ("E", "work")]
        begin, end = tracer.events
        assert begin["args"] == {"detail": 7}
        assert end["args"] == {"verdict": "ok"}

    def test_timestamps_are_integer_microseconds_since_epoch(self):
        tracer = Tracer(clock=FakeClock(step=0.001))
        tracer.span("a").done()
        # Epoch read consumes tick 0; events are at 1ms, 2ms.
        assert [e["ts"] for e in tracer.events] == [1000, 2000]

    def test_args_key_omitted_when_empty(self):
        tracer = Tracer(clock=FakeClock())
        tracer.span("bare").done()
        tracer.instant("ping")
        assert all("args" not in e for e in tracer.events)

    def test_nesting_depth_and_order(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.span("outer")
        assert tracer.depth == 1
        inner = tracer.span("inner")
        assert tracer.depth == 2
        inner.done()
        outer.done()
        assert tracer.depth == 0
        assert phases(tracer) == [("B", "outer"), ("B", "inner"),
                                  ("E", "inner"), ("E", "outer")]

    def test_closing_outer_span_closes_dangling_inner_spans(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.span("outer")
        tracer.span("inner")  # never closed (exception path)
        outer.done()
        assert phases(tracer) == [("B", "outer"), ("B", "inner"),
                                  ("E", "inner"), ("E", "outer")]

    def test_done_is_idempotent(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("once")
        span.done()
        span.done()
        assert len(tracer.events) == 2

    def test_context_manager_closes_on_exception(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("guarded"):
                raise RuntimeError("boom")
        assert phases(tracer) == [("B", "guarded"), ("E", "guarded")]

    def test_note_merges_into_exit_args(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("annotated")
        span.note(first=1).note(second=2)
        span.done(second=22, third=3)
        assert tracer.events[-1]["args"] == {"first": 1, "second": 22,
                                             "third": 3}

    def test_close_all_drains_the_stack(self):
        tracer = Tracer(clock=FakeClock())
        tracer.span("a")
        tracer.span("b")
        tracer.close_all()
        assert tracer.depth == 0
        assert phases(tracer) == [("B", "a"), ("B", "b"),
                                  ("E", "b"), ("E", "a")]


class TestInstantsAndCounters:
    def test_instant_and_counter_shapes(self):
        tracer = Tracer(clock=FakeClock())
        tracer.instant("gc", freed=12)
        tracer.counter("live_nodes", live=340)
        gc, counter = tracer.events
        assert gc["ph"] == "i" and gc["args"] == {"freed": 12}
        assert counter["ph"] == "C" and counter["args"] == {"live": 340}


class TestCompleteEvents:
    def test_complete_is_backdated_with_duration(self):
        tracer = Tracer(clock=FakeClock())  # each reading +1000us
        tracer.complete("job", 0.0005, tenant="alice")
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["dur"] == 500
        assert event["ts"] == 1000 - 500  # ends "now"
        assert event["args"] == {"tenant": "alice"}

    def test_complete_never_goes_negative(self):
        tracer = Tracer(clock=FakeClock())
        tracer.complete("job", 99.0)  # longer than the trace so far
        (event,) = tracer.events
        assert event["ts"] == 0
        assert event["dur"] == 99_000_000

    def test_complete_does_not_touch_span_stack(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("outer")
        tracer.complete("job", 0.0001)
        assert tracer.depth == 1
        span.done()
        assert [e["ph"] for e in tracer.events] == ["B", "X", "E"]


class TestInstallation:
    def test_default_is_disabled(self):
        assert get_tracer() is None

    def test_set_tracer_returns_previous_for_finally_restore(self):
        first, second = Tracer(), Tracer()
        try:
            assert set_tracer(first) is None
            assert get_tracer() is first
            assert set_tracer(second) is first
            assert get_tracer() is second
        finally:
            set_tracer(None)
        assert get_tracer() is None
