"""Exporter tests: JSONL round-trip, Chrome format, format sniffing."""

import json

from repro.obs import (Tracer, load_trace, read_jsonl, to_chrome,
                       write_chrome, write_jsonl)


def sample_events():
    tracer = Tracer(clock=iter(range(100)).__next__)
    span = tracer.span("ladder", circuit="c880")
    tracer.instant("gc", freed=5)
    tracer.counter("live_nodes", live=42)
    span.done(rungs=3)
    return tracer.events


class TestJsonl:
    def test_round_trip_is_identity(self, tmp_path):
        events = sample_events()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(events, path)
        assert read_jsonl(path) == events

    def test_reader_skips_blank_and_torn_lines(self, tmp_path):
        events = sample_events()
        path = str(tmp_path / "torn.jsonl")
        write_jsonl(events, path)
        with open(path, "a") as handle:
            handle.write("\n")
            handle.write('{"ph":"i","name":"tr')  # killed mid-write
        assert read_jsonl(path) == events

    def test_reader_keeps_only_event_objects(self, tmp_path):
        path = str(tmp_path / "mixed.jsonl")
        with open(path, "w") as handle:
            handle.write('{"ph":"i","name":"ok","ts":1}\n')
            handle.write('{"not_an_event":true}\n')
            handle.write('[1,2,3]\n')
        assert [e["name"] for e in read_jsonl(path)] == ["ok"]

    def test_writer_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "trace.jsonl")
        write_jsonl(sample_events(), path)
        assert len(read_jsonl(path)) == 4


class TestChrome:
    def test_document_shape(self):
        doc = to_chrome(sample_events(), pid=7, tid=3)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        for entry in doc["traceEvents"]:
            assert entry["pid"] == 7 and entry["tid"] == 3
            assert set(entry) >= {"name", "ph", "ts"}

    def test_instants_are_thread_scoped(self):
        doc = to_chrome(sample_events())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)

    def test_written_file_is_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome(sample_events(), path)
        with open(path) as handle:
            doc = json.load(handle)
        assert len(doc["traceEvents"]) == 4


class TestLoadTrace:
    def test_sniffs_jsonl(self, tmp_path):
        events = sample_events()
        path = str(tmp_path / "t.jsonl")
        write_jsonl(events, path)
        assert load_trace(path) == events

    def test_sniffs_chrome_and_drops_metadata_events(self, tmp_path):
        path = str(tmp_path / "t.json")
        doc = to_chrome(sample_events())
        doc["traceEvents"].append({"ph": "M", "name": "process_name",
                                   "ts": 0, "pid": 1, "tid": 1})
        with open(path, "w") as handle:
            json.dump(doc, handle)
        loaded = load_trace(path)
        assert [e["ph"] for e in loaded] == ["B", "i", "C", "E"]
