"""Summary/diff tests: tree building, aggregation, formatting."""

import pytest

from repro.obs import (Tracer, aggregate_spans, build_tree, format_diff,
                       format_summary)


def B(name, ts, **args):
    event = {"ph": "B", "name": name, "ts": ts}
    if args:
        event["args"] = args
    return event


def E(name, ts, **args):
    event = {"ph": "E", "name": name, "ts": ts}
    if args:
        event["args"] = args
    return event


LADDER = [
    B("ladder", 0),
    B("rung:symbolic_01x", 10),
    E("rung:symbolic_01x", 110, peak_nodes=500),
    B("rung:input_exact", 120),
    B("reorder", 150),
    E("reorder", 350),
    E("rung:input_exact", 520, peak_nodes=2000),
    E("ladder", 600),
]


class TestBuildTree:
    def test_hierarchy_and_intervals(self):
        roots = build_tree(LADDER)
        assert [r.name for r in roots] == ["ladder"]
        ladder = roots[0]
        assert [c.name for c in ladder.children] \
            == ["rung:symbolic_01x", "rung:input_exact"]
        reorder = ladder.children[1].children[0]
        assert (reorder.start, reorder.end) == (150, 350)

    def test_self_time_excludes_children(self):
        ladder = build_tree(LADDER)[0]
        assert ladder.duration == 600
        assert ladder.self_time == 600 - 100 - 400
        rung = ladder.children[1]
        assert rung.self_time == 400 - 200

    def test_exit_args_override_entry_args(self):
        roots = build_tree([B("s", 0, verdict="pending", fixed=1),
                            E("s", 5, verdict="ok")])
        assert roots[0].args == {"verdict": "ok", "fixed": 1}

    def test_truncated_trace_closes_dangling_spans_at_last_ts(self):
        roots = build_tree([B("outer", 0), B("inner", 10),
                            {"ph": "i", "name": "gc", "ts": 70}])
        assert roots[0].end == 70
        assert roots[0].children[0].end == 70

    def test_complete_x_events_become_leaves(self):
        roots = build_tree([B("outer", 0),
                            {"ph": "X", "name": "leaf", "ts": 5,
                             "dur": 20},
                            E("outer", 100)])
        leaf = roots[0].children[0]
        assert (leaf.start, leaf.end) == (5, 25)

    def test_instants_and_counters_are_skipped(self):
        roots = build_tree([B("s", 0),
                            {"ph": "i", "name": "gc", "ts": 1},
                            {"ph": "C", "name": "live", "ts": 2,
                             "args": {"live": 3}},
                            E("s", 9)])
        assert roots[0].children == []


class TestAggregate:
    def test_paths_and_totals(self):
        table = aggregate_spans(LADDER)
        assert table["ladder"]["count"] == 1
        assert table["ladder"]["total_us"] == 600
        assert table["ladder/rung:input_exact"]["total_us"] == 400
        assert table["ladder/rung:input_exact/reorder"]["self_us"] == 200

    def test_peak_nodes_is_max_annotation(self):
        table = aggregate_spans(LADDER + LADDER)
        rung = table["ladder/rung:input_exact"]
        assert rung["count"] == 2
        assert rung["peak_nodes"] == 2000

    def test_repeated_spans_accumulate(self):
        events = [B("s", 0), E("s", 10), B("s", 20), E("s", 50)]
        assert aggregate_spans(events)["s"] \
            == {"count": 2, "total_us": 40, "self_us": 40,
                "peak_nodes": 0}


class TestFormatSummary:
    def test_top_k_and_ranking_by_self_time(self):
        text = format_summary(LADDER, top=2, by="self")
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 rows
        # input_exact has the largest self time (200us + reorder's 200).
        assert "rung:input_exact" in lines[1] or "reorder" in lines[1]

    def test_ranking_by_peak(self):
        text = format_summary(LADDER, top=1, by="peak")
        assert "rung:input_exact" in text.splitlines()[1]

    def test_unknown_ranking_raises(self):
        with pytest.raises(ValueError):
            format_summary(LADDER, by="bogus")

    def test_empty_trace(self):
        assert "no spans" in format_summary([])


class TestFormatDiff:
    def test_delta_and_ratio_columns(self):
        slow = [B("s", 0), E("s", 200)]
        fast = [B("s", 0), E("s", 100)]
        text = format_diff(slow, fast, label_a="before",
                           label_b="after")
        assert "before" in text and "after" in text
        assert "0.50x" in text and "- " in text

    def test_span_only_in_one_trace(self):
        only_b = [B("new", 0), E("new", 50)]
        text = format_diff([], only_b)
        assert "new" in text  # both the path and the ratio marker

    def test_round_trip_from_real_tracer(self):
        tracer = Tracer(clock=iter(range(100)).__next__)
        with tracer.span("a"):
            tracer.span("b").done()
        text = format_diff(tracer.events, tracer.events)
        assert "1.00x" in text


def X(name, ts, dur, **args):
    event = {"ph": "X", "name": name, "ts": ts, "dur": dur}
    if args:
        event["args"] = args
    return event


class TestGroupBy:
    SERVICE = [
        X("job", 0, 100, tenant="alice"),
        X("job", 200, 300, tenant="bob"),
        X("job", 600, 100, tenant="alice"),
        X("gc", 800, 10),  # no tenant annotation
    ]

    def test_roots_partition_by_annotation(self):
        table = aggregate_spans(self.SERVICE, group_by="tenant")
        assert table["tenant=alice/job"]["count"] == 2
        assert table["tenant=alice/job"]["total_us"] == 200
        assert table["tenant=bob/job"]["total_us"] == 300
        assert table["tenant=-/gc"]["count"] == 1

    def test_children_inherit_the_group(self):
        events = [
            B("job", 0, tenant="alice"),
            B("rung", 10),
            E("rung", 30),
            E("job", 100),
        ]
        table = aggregate_spans(events, group_by="tenant")
        assert table["tenant=alice/job/rung"]["total_us"] == 20

    def test_no_group_means_plain_paths(self):
        table = aggregate_spans(self.SERVICE)
        assert set(table) == {"job", "gc"}
        assert table["job"]["count"] == 3

    def test_format_summary_group_by(self):
        text = format_summary(self.SERVICE, group_by="tenant")
        assert "tenant=alice/job" in text
        assert "tenant=bob/job" in text
