"""Ladder/runner instrumentation: spans per rung, exact delta stats.

Includes the regression test for the cache-delta double-count: a
manager shared between consecutive checks (or rungs) must attribute to
each check only its *own* computed-table traffic, never the cumulative
totals.
"""

import pytest

from repro.bdd import Bdd
from repro.core.ladder import CHECK_ORDER, run_ladder
from repro.experiments.runner import run_one_case
from repro.generators import magnitude_comparator
from repro.obs import ManagerSnapshot, Tracer, set_tracer
from repro.partial.extraction import make_partial


@pytest.fixture()
def case():
    spec = magnitude_comparator(4)
    partial = make_partial(spec, fraction=0.3, num_boxes=1, seed=3)
    return spec, partial


@pytest.fixture()
def tracer():
    tracer = Tracer()
    previous = set_tracer(tracer)
    yield tracer
    set_tracer(previous)
    tracer.close_all()


def spans(tracer, ph="B"):
    return [e["name"] for e in tracer.events if e["ph"] == ph]


class TestLadderSpans:
    def test_one_span_per_rung_inside_one_ladder_span(self, case,
                                                      tracer):
        spec, partial = case
        results = run_ladder(spec, partial, patterns=50, seed=1,
                             stop_at_first_error=False)
        begins = spans(tracer)
        assert begins[0] == "ladder"
        assert [n for n in begins if n.startswith("rung:")] \
            == ["rung:%s" % c for c in CHECK_ORDER]
        assert len(results) == len(CHECK_ORDER)

    def test_rung_exit_args_carry_verdict_and_counters(self, case,
                                                       tracer):
        spec, partial = case
        results = run_ladder(spec, partial, patterns=50, seed=1,
                             stop_at_first_error=False)
        ends = {e["name"]: e.get("args", {})
                for e in tracer.events if e["ph"] == "E"}
        by_check = {r.check: r for r in results}
        for name in CHECK_ORDER:
            args = ends["rung:%s" % name]
            assert args["verdict"] == by_check[name].outcome
            assert args["error_found"] == by_check[name].error_found
            for key in ("live_nodes", "peak_nodes", "cache_hits",
                        "cache_misses", "gc_runs", "reorders"):
                assert isinstance(args[key], int)
        assert ends["ladder"]["rungs"] == len(results)

    def test_ladder_restores_previous_manager_tracer(self, case,
                                                     tracer):
        spec, partial = case
        bdd = Bdd()
        run_ladder(spec, partial, patterns=20, seed=1, bdd=bdd)
        assert bdd.tracer is None

    def test_untraced_ladder_emits_nothing(self, case):
        spec, partial = case
        results = run_ladder(spec, partial, patterns=50, seed=1)
        assert results  # and no tracer was ever consulted


class TestDeltaAccounting:
    def test_rung_deltas_sum_to_manager_totals(self, case):
        """Rungs share one manager; their deltas must partition it."""
        spec, partial = case
        bdd = Bdd()
        results = run_ladder(spec, partial, patterns=50, seed=1,
                             stop_at_first_error=False, bdd=bdd)
        totals = bdd.cache_stats()["total"]
        for key, stat in (("hits", "cache_hits"),
                          ("misses", "cache_misses")):
            summed = sum(r.stats.get(stat, 0) for r in results)
            assert summed == totals[key]

    def test_random_pattern_rung_stats_stay_clean(self, case):
        spec, partial = case
        results = run_ladder(spec, partial, patterns=50, seed=1,
                             checks=("random_pattern",))
        assert "cache_hits" not in results[0].stats

    def test_shared_factory_manager_does_not_double_count(self, case):
        """Regression: consecutive checks on one shared manager.

        Before the snapshot-delta fix, the second call attributed the
        manager's *cumulative* totals to its result, double-counting
        the first call's traffic.
        """
        spec, partial = case
        bdd = Bdd()
        first = run_one_case(spec, partial, ("ie",), patterns=10,
                             seed=1, bdd_factory=lambda: bdd)["ie"]
        mid = ManagerSnapshot.capture(bdd)
        second = run_one_case(spec, partial, ("ie",), patterns=10,
                              seed=1, bdd_factory=lambda: bdd)["ie"]
        after = ManagerSnapshot.capture(bdd)
        assert first.stats["cache_hits"] == mid.hits
        assert second.stats["cache_hits"] == after.hits - mid.hits
        # The warm second run re-resolves everything from the computed
        # table, so the totals roughly double — cumulative attribution
        # would report second ~= first + second.
        assert first.stats["cache_hits"] \
            + second.stats["cache_hits"] == after.hits

    def test_fresh_manager_delta_equals_totals(self, case):
        spec, partial = case
        result = run_one_case(spec, partial, ("ie",), patterns=10,
                              seed=1)["ie"]
        assert result.stats["cache_misses"] > 0
        assert set(result.stats) >= {"cache_hits", "cache_misses",
                                     "cache_evictions",
                                     "cache_hit_rate", "gc_runs",
                                     "reorders"}


class TestManagerHooks:
    def test_gc_instant_is_emitted(self, tracer):
        bdd = Bdd()
        bdd.set_tracer(tracer)
        a, b = bdd.add_var("a"), bdd.add_var("b")
        scratch = a & b
        del scratch
        bdd.collect_garbage()
        names = [e["name"] for e in tracer.events if e["ph"] == "i"]
        assert "gc" in names

    def test_reorder_span_wraps_sifting(self, tracer):
        bdd = Bdd()
        bdd.set_tracer(tracer)
        vs = bdd.add_vars(["x%d" % i for i in range(6)])
        keep = bdd.conj([vs[i] ^ vs[i + 3] for i in range(3)])
        bdd.reorder()
        assert "reorder" in spans(tracer)
        end = next(e for e in tracer.events
                   if e["ph"] == "E" and e["name"] == "reorder")
        assert "live_after" in end["args"]
        del keep
