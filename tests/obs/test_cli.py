"""The ``trace`` CLI: record, summary, diff (and the dispatcher)."""

import json

import pytest

from repro.experiments.cli import main as experiments_main
from repro.obs.cli import main as trace_main


@pytest.fixture()
def recorded(tmp_path, capsys):
    path = tmp_path / "t.trace.json"
    code = trace_main(["record", "--benchmark", "comp",
                       "--patterns", "50", "--fraction", "0.2",
                       "-o", str(path)])
    capsys.readouterr()
    assert code == 0
    return path


class TestRecord:
    def test_unknown_benchmark_exits_2(self, capsys):
        assert trace_main(["record", "--benchmark", "nope"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_chrome_output_is_perfetto_loadable(self, recorded):
        doc = json.loads(recorded.read_text())
        assert "traceEvents" in doc
        rungs = [e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "B" and e["name"].startswith("rung:")]
        assert rungs  # one span per executed rung
        assert all("pid" in e and "tid" in e
                   for e in doc["traceEvents"])

    def test_record_prints_summary(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        code = trace_main(["record", "--benchmark", "comp",
                           "--patterns", "50", "--fraction", "0.2",
                           "--no-error", "-o", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "span" in captured.out and "ladder" in captured.out

    def test_jsonl_format(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        code = trace_main(["record", "--benchmark", "comp",
                           "--patterns", "50", "--fraction", "0.2",
                           "--format", "jsonl", "-o", str(path)])
        capsys.readouterr()
        assert code == 0
        first = json.loads(path.read_text().splitlines()[0])
        assert first["ph"] == "B" and first["name"] == "ladder"


class TestSummaryAndDiff:
    def test_summary(self, recorded, capsys):
        assert trace_main(["summary", str(recorded), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "span" in out and "ladder" in out

    def test_summary_by_peak(self, recorded, capsys):
        assert trace_main(["summary", str(recorded),
                           "--by", "peak"]) == 0
        assert "peak nodes" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert trace_main(["summary", str(tmp_path / "gone.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_diff_of_trace_with_itself(self, recorded, capsys):
        code = trace_main(["diff", str(recorded), str(recorded)])
        out = capsys.readouterr().out
        assert code == 0
        assert "before" in out and "after" in out and "1.00x" in out


class TestDispatcher:
    def test_experiments_cli_dispatches_trace(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        code = experiments_main(["trace", "record", "--benchmark",
                                 "comp", "--patterns", "50",
                                 "--fraction", "0.2", "-o", str(path)])
        capsys.readouterr()
        assert code == 0
        assert path.exists()
