"""Functional tests of the ALU generators against integer arithmetic."""

import random

import pytest

from repro.generators import alu4_like, c880_like, make_alu


def drive_alu(circuit, width, a, b, sel, cin, inv, extra=None):
    asg = {}
    for i in range(width):
        asg["a%d" % i] = bool((a >> i) & 1)
        asg["b%d" % i] = bool((b >> i) & 1)
    asg["sel0"] = bool(sel & 1)
    asg["sel1"] = bool(sel & 2)
    asg["cin"] = bool(cin)
    asg["inv"] = bool(inv)
    if extra:
        asg.update(extra)
    return asg, circuit.evaluate(asg)


def expected_result(width, a, b, sel, cin, inv):
    mask = (1 << width) - 1
    operand = (~b & mask) if inv else b
    if sel == 0:
        return (a + operand + cin) & mask
    if sel == 1:
        return a & operand
    if sel == 2:
        return a | operand
    return a ^ operand


class TestMakeAlu:
    @pytest.mark.parametrize("width", [2, 4])
    def test_all_ops_sampled(self, width):
        circuit = make_alu(width)
        rng = random.Random(0)
        for _ in range(60):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            sel = rng.randrange(4)
            cin = rng.randrange(2)
            inv = rng.randrange(2)
            _, out = drive_alu(circuit, width, a, b, sel, cin, inv)
            result = sum(out["r%d" % i] << i for i in range(width))
            want = expected_result(width, a, b, sel, cin, inv)
            assert result == want, (a, b, sel, cin, inv)
            assert out["zero"] == (result == 0)
            assert out["par"] == (bin(result).count("1") % 2 == 1)
            assert out["neg"] == bool(result >> (width - 1) & 1)

    def test_carry_out(self):
        circuit = make_alu(3)
        _, out = drive_alu(circuit, 3, 7, 7, sel=0, cin=1, inv=0)
        assert out["cout"]
        _, out = drive_alu(circuit, 3, 1, 1, sel=0, cin=0, inv=0)
        assert not out["cout"]


class TestAlu4Like:
    def test_interface_matches_paper_row(self):
        circuit = alu4_like()
        assert len(circuit.inputs) == 14
        assert len(circuit.outputs) == 8

    def test_masking(self):
        circuit = alu4_like()
        rng = random.Random(1)
        for _ in range(40):
            a = rng.randrange(16)
            b = rng.randrange(16)
            sel = rng.randrange(4)
            extra = {"mask0": bool(rng.getrandbits(1)),
                     "mask1": bool(rng.getrandbits(1))}
            _, out = drive_alu(circuit, 4, a, b, sel, 0, 0, extra)
            raw = expected_result(4, a, b, sel, 0, 0)
            want = raw
            if extra["mask0"]:
                want &= ~0b0011
            if extra["mask1"]:
                want &= ~0b1100
            got = sum(out["r%d" % i] << i for i in range(4))
            assert got == want


class TestC880Like:
    def test_interface(self):
        circuit = c880_like()
        assert len(circuit.inputs) == 23
        assert len(circuit.outputs) == 21

    def test_width_parameter(self):
        assert len(c880_like(width=4).inputs) == 4 * 3 + 5
        with pytest.raises(ValueError):
            c880_like(width=5)

    def test_datapath_with_mask_and_enable(self):
        circuit = c880_like()
        rng = random.Random(2)
        for _ in range(30):
            a = rng.randrange(64)
            b = rng.randrange(64)
            m = rng.randrange(64)
            sel = rng.randrange(4)
            en = rng.randrange(2)
            asg = {}
            for i in range(6):
                asg["a%d" % i] = bool((a >> i) & 1)
                asg["b%d" % i] = bool((b >> i) & 1)
                asg["m%d" % i] = bool((m >> i) & 1)
            asg.update({"sel0": bool(sel & 1), "sel1": bool(sel & 2),
                        "cin": False, "inv": False, "en": bool(en)})
            out = circuit.evaluate(asg)
            want = expected_result(6, a, b, sel, 0, 0) if en else 0
            got = sum(out["r%d" % i] << i for i in range(6))
            assert got == want
            masked = sum(out["mr%d" % i] << i for i in range(6))
            assert masked == (want & m)
            assert out["zero"] == (want == 0)
