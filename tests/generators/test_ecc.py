"""Functional tests of the Hamming-corrector generators."""

import random

import pytest

from repro.core import check_equivalence
from repro.generators import (c1355_like, c1908_like, c499_like,
                              hamming_corrector)


def encode(data_bits, check_bits, word):
    """Check bits consistent with a data word (syndrome = 0)."""
    from repro.generators.ecc import _check_positions

    cover = _check_positions(data_bits, check_bits)
    checks = 0
    for c in range(check_bits):
        parity = 0
        for d in cover[c]:
            parity ^= (word >> d) & 1
        checks |= parity << c
    return checks


def drive(circuit, data_bits, check_bits, word, checks, enable=True):
    asg = {}
    for i in range(data_bits):
        asg["d%d" % i] = bool((word >> i) & 1)
    for i in range(check_bits):
        asg["c%d" % i] = bool((checks >> i) & 1)
    asg["en"] = enable
    return circuit.evaluate(asg)


class TestHammingCorrector:
    @pytest.mark.parametrize("data_bits,check_bits", [(4, 3), (8, 4)])
    def test_clean_word_passes_through(self, data_bits, check_bits):
        circuit = hamming_corrector(data_bits, check_bits)
        rng = random.Random(0)
        for _ in range(20):
            word = rng.randrange(1 << data_bits)
            checks = encode(data_bits, check_bits, word)
            out = drive(circuit, data_bits, check_bits, word, checks)
            got = sum(out["q%d" % i] << i for i in range(data_bits))
            assert got == word

    @pytest.mark.parametrize("data_bits,check_bits", [(4, 3), (8, 4)])
    def test_single_data_error_corrected(self, data_bits, check_bits):
        circuit = hamming_corrector(data_bits, check_bits)
        rng = random.Random(1)
        for _ in range(25):
            word = rng.randrange(1 << data_bits)
            checks = encode(data_bits, check_bits, word)
            flip = rng.randrange(data_bits)
            corrupted = word ^ (1 << flip)
            out = drive(circuit, data_bits, check_bits, corrupted,
                        checks)
            got = sum(out["q%d" % i] << i for i in range(data_bits))
            assert got == word, (word, flip)

    def test_enable_off_passes_corrupted_word(self):
        circuit = hamming_corrector(4, 3)
        word = 0b1010
        checks = encode(4, 3, word)
        corrupted = word ^ 0b0100
        out = drive(circuit, 4, 3, corrupted, checks, enable=False)
        got = sum(out["q%d" % i] << i for i in range(4))
        assert got == corrupted

    def test_detect_flag(self):
        circuit = hamming_corrector(4, 3, with_detect=True)
        word = 0b0110
        checks = encode(4, 3, word)
        out = drive(circuit, 4, 3, word, checks)
        assert not out["err"]
        out = drive(circuit, 4, 3, word ^ 1, checks)
        assert out["err"]

    def test_capacity_check(self):
        with pytest.raises(ValueError):
            hamming_corrector(8, 3)   # 3 check bits cover 7 data bits


class TestPaperStandIns:
    def test_c499_interface(self):
        circuit = c499_like()
        assert len(circuit.inputs) == 39
        assert len(circuit.outputs) == 32

    def test_c1908_interface(self):
        circuit = c1908_like()
        assert len(circuit.inputs) == 22
        assert len(circuit.outputs) == 22

    def test_c1355_is_c499_expanded(self):
        a, b = c499_like(), c1355_like()
        assert b.num_gates > a.num_gates
        assert all(len(g.inputs) <= 2 for g in b.gates)
        assert check_equivalence(a, b).equivalent

    def test_c499_corrects_random_single_error(self):
        circuit = c499_like()
        rng = random.Random(7)
        word = rng.randrange(1 << 32)
        checks = encode(32, 6, word)
        flip = rng.randrange(32)
        out = drive(circuit, 32, 6, word ^ (1 << flip), checks)
        got = sum(out["q%d" % i] << i for i in range(32))
        assert got == word
