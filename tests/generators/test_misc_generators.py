"""Tests for comparator, arithmetic and random-logic generators."""

import random

import pytest

from repro.generators import (apex3_like, array_multiplier,
                              benchmark_circuit, benchmark_suite,
                              comp_like, magnitude_comparator,
                              parity_circuit, random_logic, random_pla,
                              ripple_adder_circuit, routing_logic,
                              term1_like)
from repro.generators.benchmarks import BENCHMARK_NAMES


def word_assignment(prefixes_widths, values):
    asg = {}
    for (prefix, width), value in zip(prefixes_widths, values):
        for i in range(width):
            asg["%s%d" % (prefix, i)] = bool((value >> i) & 1)
    return asg


class TestComparator:
    @pytest.mark.parametrize("width", [1, 3, 5])
    def test_exhaustive_small(self, width):
        circuit = magnitude_comparator(width)
        for a in range(1 << width):
            for b in range(1 << width):
                asg = word_assignment(
                    [("a", width), ("b", width)], [a, b])
                out = circuit.evaluate(asg)
                assert out["lt"] == (a < b)
                assert out["eq"] == (a == b)
                assert out["gt"] == (a > b)

    def test_comp_like_interface(self):
        circuit = comp_like()
        assert len(circuit.inputs) == 32
        assert len(circuit.outputs) == 3

    def test_comp_like_sampled(self):
        circuit = comp_like()
        rng = random.Random(0)
        for _ in range(30):
            a = rng.randrange(1 << 16)
            b = rng.randrange(1 << 16)
            asg = word_assignment([("a", 16), ("b", 16)], [a, b])
            out = circuit.evaluate(asg)
            assert (out["lt"], out["eq"], out["gt"]) \
                == (a < b, a == b, a > b)


class TestArithmetic:
    @pytest.mark.parametrize("width", [2, 4])
    def test_adder(self, width):
        circuit = ripple_adder_circuit(width)
        rng = random.Random(0)
        for _ in range(30):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            cin = rng.randrange(2)
            asg = word_assignment([("a", width), ("b", width)], [a, b])
            asg["cin"] = bool(cin)
            out = circuit.evaluate(asg)
            got = sum(out["s%d" % i] << i for i in range(width))
            got += out[circuit.outputs[-1]] << width
            assert got == a + b + cin

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_multiplier(self, width):
        circuit = array_multiplier(width)
        assert len(circuit.outputs) == 2 * width
        for a in range(1 << width):
            for b in range(1 << width):
                asg = word_assignment(
                    [("a", width), ("b", width)], [a, b])
                out = circuit.evaluate(asg)
                got = sum(out["p%d" % i] << i for i in range(2 * width))
                assert got == a * b, (a, b)

    def test_parity(self):
        circuit = parity_circuit(5)
        for bits in range(32):
            asg = {("x%d" % i): bool((bits >> i) & 1) for i in range(5)}
            assert circuit.evaluate(asg)["p"] \
                == (bin(bits).count("1") % 2 == 1)


class TestRandomLogic:
    def test_deterministic(self):
        a = random_logic(10, 4, 30, seed=5)
        b = random_logic(10, 4, 30, seed=5)
        assert [str(g) for g in a.gates] == [str(g) for g in b.gates]

    def test_different_seeds_differ(self):
        a = random_logic(10, 4, 30, seed=5)
        b = random_logic(10, 4, 30, seed=6)
        assert [str(g) for g in a.gates] != [str(g) for g in b.gates]

    def test_interface_and_validity(self):
        circuit = random_logic(12, 5, 40, seed=1)
        assert len(circuit.inputs) == 12
        assert len(circuit.outputs) == 5
        circuit.validate()
        rng = random.Random(0)
        asg = {n: bool(rng.getrandbits(1)) for n in circuit.inputs}
        assert len(circuit.evaluate(asg)) == 5

    def test_too_few_gates_rejected(self):
        with pytest.raises(ValueError):
            random_logic(4, 5, 3, seed=0)

    def test_paper_interfaces(self):
        apex3 = apex3_like()
        assert (len(apex3.inputs), len(apex3.outputs)) == (54, 50)
        term1 = term1_like()
        assert (len(term1.inputs), len(term1.outputs)) == (34, 10)


class TestRandomPla:
    def test_deterministic(self):
        a = random_pla(10, 5, 12, seed=3)
        b = random_pla(10, 5, 12, seed=3)
        assert [str(g) for g in a.gates] == [str(g) for g in b.gates]

    def test_two_level_structure(self):
        circuit = random_pla(12, 6, 15, seed=1)
        circuit.validate()
        # two-level plus inverters: shallow by construction
        assert circuit.depth() <= 10

    def test_every_output_nonconstant(self):
        from repro.bdd import Bdd
        from repro.sim import symbolic_simulate

        circuit = random_pla(10, 6, 14, seed=4)
        bdd = Bdd()
        fns = symbolic_simulate(circuit, bdd)
        for net in circuit.outputs:
            assert not fns[net].is_constant, net


class TestRoutingLogic:
    def test_steering_semantics(self):
        circuit = routing_logic(4, 3, 0, seed=9)
        # with all masks and enable on and no inversion, each output
        # must equal exactly one data line per select code
        for code in range(4):
            for data in range(16):
                asg = {"en": True, "inv": False}
                for b in range(2):
                    asg["s%d" % b] = bool((code >> b) & 1)
                for i in range(4):
                    asg["d%d" % i] = bool((data >> i) & 1)
                for k in range(3):
                    asg["m%d" % k] = True
                out = circuit.evaluate(asg)
                for k in range(3):
                    assert out["f%d" % k] in (True, False)
                # each output is one of the data bits
                for k in range(3):
                    assert out["f%d" % k] in [
                        bool((data >> i) & 1) for i in range(4)]

    def test_enable_forces_inverted_constant(self):
        circuit = routing_logic(4, 2, 0, seed=9)
        asg = {"en": False, "inv": True,
               "m0": True, "m1": True,
               "s0": False, "s1": False}
        for i in range(4):
            asg["d%d" % i] = True
        out = circuit.evaluate(asg)
        assert out == {"f0": True, "f1": True}

    def test_mask_gates_output(self):
        circuit = routing_logic(4, 2, 0, seed=9)
        asg = {"en": True, "inv": False,
               "m0": False, "m1": False,
               "s0": False, "s1": False}
        for i in range(4):
            asg["d%d" % i] = True
        out = circuit.evaluate(asg)
        assert out == {"f0": False, "f1": False}


class TestBenchmarkSuite:
    def test_names_in_paper_order(self):
        assert BENCHMARK_NAMES == ["alu4", "apex3", "C499", "C880",
                                   "C1355", "C1908", "comp", "term1"]

    def test_suite_builds_everything(self):
        suite = benchmark_suite()
        assert set(suite) == set(BENCHMARK_NAMES)
        for name, circuit in suite.items():
            circuit.validate()
            assert circuit.num_gates > 50, name

    def test_lookup(self):
        assert benchmark_circuit("comp").name == "comp"
        with pytest.raises(ValueError):
            benchmark_circuit("c17")
