"""Tests for Black Box carving."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import CircuitBuilder, CircuitError
from repro.core import check_equivalence
from repro.generators import alu4_like, comp_like
from repro.partial import carve, make_partial, select_gate_groups
from repro.partial.blackbox import PartialImplementation


class TestCarve:
    def test_interface_is_minimal_and_correct(self):
        spec = alu4_like()
        groups = select_gate_groups(spec, 0.1, 1, random.Random(0))
        partial = carve(spec, groups)
        box = partial.boxes[0]
        group = groups[0]
        # outputs: group nets still referenced outside
        for net in box.outputs:
            assert net in group
        # inputs: non-group nets feeding the group
        for net in box.inputs:
            assert net not in group
        # circuit no longer drives the carved gates
        for net in group:
            assert not partial.circuit.drives(net)

    def test_overlapping_groups_rejected(self):
        spec = alu4_like()
        nets = [g.output for g in spec.gates]
        with pytest.raises(CircuitError):
            carve(spec, [nets[:5], nets[3:8]])

    def test_unknown_gate_rejected(self):
        spec = alu4_like()
        with pytest.raises(CircuitError):
            carve(spec, [{"not_a_net"}])

    def test_substituting_original_logic_restores_spec(self):
        """Carve, then plug the original gates back in: must be
        equivalent to the untouched specification."""
        spec = alu4_like()
        partial = make_partial(spec, fraction=0.12, num_boxes=2, seed=11)
        carved = {net for net in spec.topological_order()
                  if not partial.circuit.drives(net)}
        implementations = {}
        for box in partial.boxes:
            # Recover this box's own gate group: the carved gates
            # reachable from its outputs without crossing its inputs.
            group = set()
            stack = list(box.outputs)
            while stack:
                net = stack.pop()
                if net in group or net in box.inputs or net not in carved:
                    continue
                group.add(net)
                stack.extend(spec.gate(net).inputs)
            builder = CircuitBuilder(box.name)
            rename = {net: builder.input("i%d" % k)
                      for k, net in enumerate(box.inputs)}
            for net in spec.topological_order():
                if net not in group:
                    continue
                gate = spec.gate(net)
                ins = [rename[s] if s in rename else "inner_" + s
                       for s in gate.inputs]
                builder.circuit.add_gate("inner_" + net, gate.gtype, ins)
            for k, net in enumerate(box.outputs):
                builder.buf("inner_" + net, "o%d" % k)
                builder.circuit.add_output("o%d" % k)
            implementations[box.name] = builder.circuit
        complete = partial.substitute(implementations)
        assert check_equivalence(spec, complete).equivalent


class TestSelectGateGroups:
    def test_fraction_respected_roughly(self):
        spec = comp_like()
        groups = select_gate_groups(spec, 0.2, 2, random.Random(1))
        total = sum(len(g) for g in groups)
        assert total >= 2
        assert total <= spec.num_gates

    def test_bad_parameters(self):
        spec = alu4_like()
        with pytest.raises(ValueError):
            select_gate_groups(spec, 0.0, 1, random.Random(0))
        with pytest.raises(ValueError):
            select_gate_groups(spec, 0.5, 0, random.Random(0))

    def test_scattered_strategy(self):
        spec = alu4_like()
        groups = select_gate_groups(spec, 0.1, 1, random.Random(3),
                                    connected=False)
        partial = carve(spec, groups)
        assert partial.num_boxes == 1


class TestMakePartial:
    @pytest.mark.parametrize("boxes", [1, 2, 5])
    def test_valid_partial_produced(self, boxes):
        spec = alu4_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=boxes,
                               seed=5)
        assert partial.num_boxes == boxes
        assert partial.circuit.num_gates < spec.num_gates
        partial.validate_against(spec)
        # convexity: the model constructor would have raised on feedback
        assert isinstance(partial, PartialImplementation)

    def test_deterministic_for_seed(self):
        spec = alu4_like()
        p1 = make_partial(spec, fraction=0.1, num_boxes=2, seed=42)
        p2 = make_partial(spec, fraction=0.1, num_boxes=2, seed=42)
        assert [b.inputs for b in p1.boxes] == [b.inputs
                                                for b in p2.boxes]
        assert [b.outputs for b in p1.boxes] == [b.outputs
                                                 for b in p2.boxes]

    def test_no_check_flags_clean_carve(self):
        from repro.core import run_ladder

        spec = alu4_like()
        for seed in (0, 1, 2):
            partial = make_partial(spec, fraction=0.1, num_boxes=3,
                                   seed=seed)
            results = run_ladder(spec, partial, patterns=100, seed=seed,
                                 stop_at_first_error=False)
            assert not any(r.error_found for r in results), seed
