"""Tests for the Black Box / PartialImplementation model."""

import pytest

from repro.circuit import CircuitBuilder, CircuitError, GateType
from repro.partial import BlackBox, PartialImplementation
from repro.generators import figure1


def chain_circuit():
    """z1 feeds logic feeding BB2's input; z2 is BB2's output."""
    builder = CircuitBuilder("chain")
    a = builder.input("a")
    mid = builder.and_(a, "z1")
    builder.output(builder.or_(mid, "z2"), "f")
    circuit = builder.circuit
    circuit.validate(allow_free=True)
    return circuit, mid


class TestBlackBox:
    def test_requires_outputs(self):
        with pytest.raises(CircuitError):
            BlackBox("B", ("a",), ())

    def test_rejects_duplicate_outputs(self):
        with pytest.raises(CircuitError):
            BlackBox("B", ("a",), ("z", "z"))


class TestPartialImplementation:
    def test_topological_box_order(self):
        circuit, mid = chain_circuit()
        boxes = [BlackBox("B2", (mid,), ("z2",)),
                 BlackBox("B1", ("a",), ("z1",))]
        partial = PartialImplementation(circuit, boxes)
        assert [b.name for b in partial.boxes] == ["B1", "B2"]
        assert partial.box_outputs == ["z1", "z2"]

    def test_self_feedback_rejected(self):
        circuit, mid = chain_circuit()
        # B1 reads a net that depends on its own output z1.
        boxes = [BlackBox("B1", (mid,), ("z1",)),
                 BlackBox("B2", ("a",), ("z2",))]
        with pytest.raises(CircuitError):
            PartialImplementation(circuit, boxes)

    def test_cyclic_boxes_rejected(self):
        builder = CircuitBuilder()
        builder.input("a")
        t1 = builder.and_("a", "z1")
        t2 = builder.or_("a", "z2")
        builder.output(t1, "f1")
        builder.output(t2, "f2")
        circuit = builder.circuit
        circuit.validate(allow_free=True)
        boxes = [BlackBox("B1", (t2,), ("z1",)),
                 BlackBox("B2", (t1,), ("z2",))]
        with pytest.raises(CircuitError):
            PartialImplementation(circuit, boxes)

    def test_unowned_free_net_rejected(self):
        circuit, mid = chain_circuit()
        with pytest.raises(CircuitError):
            PartialImplementation(
                circuit, [BlackBox("B1", ("a",), ("z1",))])

    def test_output_not_free_rejected(self):
        circuit, mid = chain_circuit()
        boxes = [BlackBox("B1", ("a",), ("z1",)),
                 BlackBox("B2", (mid,), ("z2",)),
                 BlackBox("B3", ("a",), (mid,))]
        with pytest.raises(CircuitError):
            PartialImplementation(circuit, boxes)

    def test_duplicate_box_names_rejected(self):
        circuit, mid = chain_circuit()
        boxes = [BlackBox("B", ("a",), ("z1",)),
                 BlackBox("B", (mid,), ("z2",))]
        with pytest.raises(CircuitError):
            PartialImplementation(circuit, boxes)

    def test_double_driven_free_net_rejected(self):
        circuit, mid = chain_circuit()
        boxes = [BlackBox("B1", ("a",), ("z1",)),
                 BlackBox("B2", (mid,), ("z2",)),
                 BlackBox("B3", ("a",), ("z1",))]
        with pytest.raises(CircuitError):
            PartialImplementation(circuit, boxes)

    def test_box_lookup(self):
        _, partial = figure1()
        assert partial.box("BB1").outputs == ("z1",)
        with pytest.raises(CircuitError):
            partial.box("nope")

    def test_stats_and_repr(self):
        _, partial = figure1()
        stats = partial.stats()
        assert stats["boxes"] == 2
        assert "BB1" in repr(partial)

    def test_validate_against(self):
        spec, partial = figure1()
        partial.validate_against(spec)
        builder = CircuitBuilder()
        builder.input("only")
        builder.output(builder.buf("only"), "f")
        bad_spec = builder.build()
        with pytest.raises(CircuitError):
            partial.validate_against(bad_spec)


class TestSubstitute:
    def test_substitute_completes_figure1(self):
        spec, partial = figure1()
        and_box = CircuitBuilder("and2")
        i0, i1 = and_box.input("i0"), and_box.input("i1")
        and_box.output(and_box.and_(i0, i1), "o0")
        or_box = CircuitBuilder("or2")
        j0, j1 = or_box.input("i0"), or_box.input("i1")
        or_box.output(or_box.or_(j0, j1), "o0")
        complete = partial.substitute({"BB1": and_box.build(),
                                       "BB2": or_box.build()})
        from repro.core import check_equivalence
        assert check_equivalence(spec, complete).equivalent

    def test_missing_implementation_rejected(self):
        _, partial = figure1()
        with pytest.raises(CircuitError):
            partial.substitute({})

    def test_interface_mismatch_rejected(self):
        _, partial = figure1()
        tiny = CircuitBuilder("tiny")
        tiny.input("i0")
        tiny.output(tiny.not_("i0"), "o0")
        with pytest.raises(CircuitError):
            partial.substitute({"BB1": tiny.build(),
                                "BB2": tiny.build()})

    def test_passthrough_rejected(self):
        _, partial = figure1()
        passthru = CircuitBuilder("pass")
        passthru.input("w")
        passthru.input("v")
        passthru.circuit.add_output("w")
        bad = passthru.circuit
        with pytest.raises(CircuitError):
            partial.substitute({"BB1": bad, "BB2": bad})
