"""Tests for the error-insertion fault model."""

import random

import pytest

from repro.circuit import CircuitBuilder, CircuitError, GateType
from repro.generators import alu4_like
from repro.partial import (MUTATION_KINDS, Mutation, applicable_mutations,
                           apply_mutation, insert_random_error)


def two_gate_circuit():
    builder = CircuitBuilder("two")
    a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
    t = builder.and_(a, b, out="t")
    builder.output(builder.or_(t, c, out="f"), "f")
    return builder.circuit


class TestApplyMutation:
    def test_invert_output(self):
        circuit = two_gate_circuit()
        mutated = apply_mutation(circuit, Mutation("invert_output", "t"))
        assert mutated.gate("t").gtype is GateType.NAND
        # original untouched
        assert circuit.gate("t").gtype is GateType.AND

    def test_invert_input_splices_inverter(self):
        circuit = two_gate_circuit()
        mutated = apply_mutation(
            circuit, Mutation("invert_input", "f", pin=1))
        src = mutated.gate("f").inputs[1]
        assert mutated.gate(src).gtype is GateType.NOT
        assert mutated.evaluate({"a": False, "b": False, "c": False})["f"]

    def test_invert_input_removes_existing_inverter(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        n = builder.not_(a, out="na")
        builder.output(builder.buf(n, out="f"), "f")
        circuit = builder.circuit
        mutated = apply_mutation(
            circuit, Mutation("invert_input", "f", pin=0))
        assert mutated.gate("f").inputs == ("a",)

    def test_change_gate_type(self):
        circuit = two_gate_circuit()
        mutated = apply_mutation(
            circuit, Mutation("change_gate_type", "t"))
        assert mutated.gate("t").gtype is GateType.OR

    def test_remove_input(self):
        circuit = two_gate_circuit()
        mutated = apply_mutation(
            circuit, Mutation("remove_input", "t", pin=0))
        assert mutated.gate("t").inputs == ("b",)

    def test_remove_only_input_rejected(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        builder.output(builder.and_(a, out="g"), "g")
        with pytest.raises(CircuitError):
            apply_mutation(builder.circuit,
                           Mutation("remove_input", "g", pin=0))

    def test_remove_input_of_xor_rejected(self):
        builder = CircuitBuilder()
        a, b = builder.input("a"), builder.input("b")
        builder.output(builder.xor_(a, b, out="g"), "g")
        with pytest.raises(CircuitError):
            apply_mutation(builder.circuit,
                           Mutation("remove_input", "g", pin=0))

    def test_bad_pin_rejected(self):
        circuit = two_gate_circuit()
        with pytest.raises(CircuitError):
            apply_mutation(circuit, Mutation("invert_input", "t", pin=9))
        with pytest.raises(CircuitError):
            apply_mutation(circuit, Mutation("invert_input", "t"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(CircuitError):
            apply_mutation(two_gate_circuit(),
                           Mutation("scramble", "t"))

    def test_mutation_on_partial_circuit(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        builder.output(builder.and_(a, "z", out="g"), "g")
        circuit = builder.circuit
        circuit.validate(allow_free=True)
        mutated = apply_mutation(circuit,
                                 Mutation("change_gate_type", "g"))
        assert mutated.free_nets() == ["z"]

    def test_describe(self):
        assert "pin 1" in Mutation("invert_input", "g", pin=1).describe()
        assert "pin" not in Mutation("invert_output", "g").describe()


class TestApplicableMutations:
    def test_catalogue_contents(self):
        circuit = two_gate_circuit()
        muts = applicable_mutations(circuit)
        kinds = {m.kind for m in muts}
        assert kinds == set(MUTATION_KINDS)
        # every listed mutation must apply cleanly
        for m in muts:
            apply_mutation(circuit, m)

    def test_counts(self):
        circuit = two_gate_circuit()
        muts = applicable_mutations(circuit)
        # t: AND/2 -> 1 invert_output + 2 invert_input + 1 change + 2 rm
        # f: OR/2  -> same
        assert len(muts) == 12


class TestInsertRandomError:
    def test_deterministic_per_rng_state(self):
        circuit = alu4_like()
        m1 = insert_random_error(circuit, random.Random(9))[1]
        m2 = insert_random_error(circuit, random.Random(9))[1]
        assert m1 == m2

    def test_mutant_differs_structurally(self):
        circuit = alu4_like()
        mutated, mutation = insert_random_error(circuit, random.Random(1))
        assert mutated.gates != circuit.gates or \
            mutated.num_gates != circuit.num_gates

    def test_empty_circuit_rejected(self):
        empty = CircuitBuilder().circuit
        with pytest.raises(CircuitError):
            insert_random_error(empty, random.Random(0))
