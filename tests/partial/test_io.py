"""Tests for saving/loading partial implementations."""

import json

import pytest

from repro.circuit import CircuitError
from repro.core import run_ladder
from repro.generators import alu4_like, figure1
from repro.partial import (boxes_from_json, boxes_to_json, load_partial,
                           make_partial, save_partial)


class TestRoundTrip:
    def test_figure1_round_trip(self, tmp_path):
        spec, partial = figure1()
        base = str(tmp_path / "fig1")
        save_partial(partial, base)
        loaded = load_partial(base)
        assert [b.name for b in loaded.boxes] \
            == [b.name for b in partial.boxes]
        assert loaded.box_outputs == partial.box_outputs
        assert set(loaded.circuit.free_nets()) \
            == set(partial.circuit.free_nets())
        # the loaded model checks identically
        results = run_ladder(spec, loaded, patterns=50, seed=0,
                             stop_at_first_error=False)
        assert not any(r.error_found for r in results)

    def test_carved_benchmark_round_trip(self, tmp_path):
        spec = alu4_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=2, seed=9)
        base = str(tmp_path / "alu4p")
        save_partial(partial, base)
        loaded = load_partial(base)
        assert loaded.num_boxes == 2
        assert sorted(loaded.circuit.inputs) \
            == sorted(partial.circuit.inputs)
        # functional agreement on the kept logic
        import random

        rng = random.Random(0)
        for _ in range(10):
            asg = {n: bool(rng.getrandbits(1))
                   for n in partial.circuit.inputs}
            for net in partial.box_outputs:
                asg[net] = bool(rng.getrandbits(1))
            assert partial.circuit.evaluate(asg) \
                == loaded.circuit.evaluate(asg)


class TestSidecar:
    def test_json_shape(self):
        _, partial = figure1()
        payload = json.loads(boxes_to_json(partial))
        assert payload["format"] == "repro-partial"
        assert len(payload["boxes"]) == 2

    def test_bad_sidecar_rejected(self):
        _, partial = figure1()
        with pytest.raises(CircuitError):
            boxes_from_json("not json", partial.circuit)
        with pytest.raises(CircuitError):
            boxes_from_json('{"format": "other"}', partial.circuit)
        with pytest.raises(CircuitError):
            boxes_from_json(
                '{"format": "repro-partial", "version": 99}',
                partial.circuit)

    def test_missing_files_rejected(self, tmp_path):
        with pytest.raises(CircuitError):
            load_partial(str(tmp_path / "nope"))
        _, partial = figure1()
        save_partial(partial, str(tmp_path / "half"))
        (tmp_path / "half.boxes.json").unlink()
        with pytest.raises(CircuitError):
            load_partial(str(tmp_path / "half"))
