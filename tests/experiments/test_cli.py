"""Tests for the experiments command-line interface."""

import json

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "figure3b" in out
        assert "MISMATCH" not in out

    def test_tiny_table_run(self, capsys):
        code = main(["table1", "--selections", "1", "--errors", "2",
                     "--patterns", "50", "--benchmarks", "alu4",
                     "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "alu4" in out
        assert "one Black Box" in out

    def test_table2_uses_five_boxes(self, capsys):
        code = main(["table2", "--selections", "1", "--errors", "1",
                     "--patterns", "20", "--benchmarks", "alu4",
                     "--quiet"])
        assert code == 0
        assert "five Black Boxes" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--benchmarks", "c17"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_format_json_stdout_is_clean(self, capsys):
        # Progress goes to stderr, so stdout must parse as JSON even
        # without --quiet.
        code = main(["table1", "--selections", "1", "--errors", "1",
                     "--patterns", "20", "--benchmarks", "alu4",
                     "--format", "json"])
        assert code == 0
        captured = capsys.readouterr()
        data = json.loads(captured.out)
        assert data[0]["circuit"] == "alu4"
        assert "checks" in data[0]

    def test_format_csv_stdout_is_clean(self, capsys):
        code = main(["table1", "--selections", "1", "--errors", "1",
                     "--patterns", "20", "--benchmarks", "alu4",
                     "--quiet", "--format", "csv"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("circuit,")
        assert ",ie," in out

    def test_parallel_run_with_journal(self, tmp_path, capsys):
        journal = tmp_path / "journal.jsonl"
        code = main(["table1", "--selections", "1", "--errors", "2",
                     "--patterns", "20", "--benchmarks", "alu4",
                     "--quiet", "--jobs", "2",
                     "--journal", str(journal)])
        assert code == 0
        assert "alu4" in capsys.readouterr().out
        lines = journal.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["case"]["benchmark"] == "alu4"
                   for line in lines)

    def test_bad_jobs_and_timeout_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--jobs", "0"])
        with pytest.raises(SystemExit):
            main(["table1", "--timeout", "0"])

    def test_compare_flag(self, capsys):
        code = main(["table1", "--selections", "1", "--errors", "1",
                     "--patterns", "20", "--benchmarks", "alu4",
                     "--quiet", "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "measured vs paper" in out
