"""Tests for the experiments command-line interface."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "figure3b" in out
        assert "MISMATCH" not in out

    def test_tiny_table_run(self, capsys):
        code = main(["table1", "--selections", "1", "--errors", "2",
                     "--patterns", "50", "--benchmarks", "alu4",
                     "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "alu4" in out
        assert "one Black Box" in out

    def test_table2_uses_five_boxes(self, capsys):
        code = main(["table2", "--selections", "1", "--errors", "1",
                     "--patterns", "20", "--benchmarks", "alu4",
                     "--quiet"])
        assert code == 0
        assert "five Black Boxes" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--benchmarks", "c17"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_compare_flag(self, capsys):
        code = main(["table1", "--selections", "1", "--errors", "1",
                     "--patterns", "20", "--benchmarks", "alu4",
                     "--quiet", "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "measured vs paper" in out
