"""Tests for the campaign's spec-order warm start."""

from repro.experiments.runner import _tune_spec
from repro.core import check_equivalence
from repro.generators.comparator import magnitude_comparator


class TestTuneSpec:
    def test_order_is_permutation_and_function_preserved(self):
        spec = magnitude_comparator(6)
        # deliberately bad declaration order: all a's then all b's
        bad = spec.with_input_order(
            [n for n in spec.inputs if n.startswith("a")]
            + [n for n in spec.inputs if n.startswith("b")])
        tuned, nodes = _tune_spec(bad)
        assert sorted(tuned.inputs) == sorted(spec.inputs)
        assert nodes > 0
        assert check_equivalence(spec, tuned).equivalent

    def test_tuned_order_beats_bad_order(self):
        from repro.bdd import Bdd
        from repro.sim import symbolic_simulate

        spec = magnitude_comparator(8)
        bad = spec.with_input_order(
            [n for n in spec.inputs if n.startswith("a")]
            + [n for n in spec.inputs if n.startswith("b")])

        def spec_size(circuit):
            bdd = Bdd()
            fns = symbolic_simulate(circuit, bdd)
            return bdd.manager.size(
                [fns[n].node for n in circuit.outputs])

        tuned, _ = _tune_spec(bad)
        assert spec_size(tuned) < spec_size(bad)
