"""Tests for JSON/CSV export of experiment results."""

import json

import pytest

from repro.experiments import (BenchmarkRow, rows_to_csv, rows_to_dict,
                               rows_to_json)
from repro.experiments.runner import CHECKS


def make_row():
    row = BenchmarkRow(circuit="alu4", inputs=14, outputs=8,
                       spec_nodes=324)
    row.cases = 12
    for i, check in enumerate(CHECKS):
        row.detected[check] = 6 + i
        row.impl_nodes[check] = 100.0 + i
        row.peak_nodes[check] = 1000.0 + i
        row.runtime[check] = 0.01 * (i + 1)
    return row


class TestExport:
    def test_dict_shape(self):
        data = rows_to_dict([make_row()])
        assert len(data) == 1
        entry = data[0]
        assert entry["circuit"] == "alu4"
        assert entry["cases"] == 12
        assert set(entry["checks"]) == set(CHECKS)
        ie = entry["checks"]["ie"]
        assert ie["detection_percent"] == pytest.approx(1000 / 12, 0.01)
        low, high = ie["detection_ci95"]
        assert 0 <= low <= ie["detection_percent"] <= high <= 100

    def test_json_parses(self):
        text = rows_to_json([make_row()])
        data = json.loads(text)
        assert data[0]["spec_nodes"] == 324

    def test_intervals_optional(self):
        data = rows_to_dict([make_row()], intervals=False)
        assert "detection_ci95" not in data[0]["checks"]["r.p."]

    def test_csv(self):
        text = rows_to_csv([make_row()])
        lines = text.strip().splitlines()
        assert lines[0].startswith("circuit,")
        assert len(lines) == 1 + len(CHECKS)
        assert "alu4" in lines[1]

    def test_degradation_fields_exported(self):
        row = make_row()
        for check in CHECKS:
            row.valid[check] = 12
        row.detected["ie"] = 6
        row.valid["ie"] = 9
        row.timeouts["ie"] = 2
        row.check_errors["ie"] = 1
        row.wall_seconds = 3.5
        entry = rows_to_dict([row])[0]
        assert entry["wall_seconds"] == pytest.approx(3.5)
        ie = entry["checks"]["ie"]
        assert ie["valid_cases"] == 9
        assert ie["timeouts"] == 2
        assert ie["errors"] == 1
        # detection ratio and CI use the valid denominator, not cases
        assert ie["detection_percent"] == pytest.approx(600 / 9, 0.01)
        csv_lines = rows_to_csv([row]).strip().splitlines()
        assert csv_lines[0].endswith("valid_cases,timeouts,errors")
        ie_line = next(l for l in csv_lines if ",ie," in l)
        assert ie_line.endswith("9,2,1")

    def test_cli_json_output(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "r.json"
        code = main(["table1", "--selections", "1", "--errors", "1",
                     "--patterns", "20", "--benchmarks", "alu4",
                     "--quiet", "--json", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert data[0]["circuit"] == "alu4"
