"""Tests for the statistics helpers."""

import pytest

from repro.experiments.stats import (detection_interval, mean, stddev,
                                     wilson_interval)


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(7, 10)
        assert low < 0.7 < high

    def test_extremes_stay_in_unit_interval(self):
        low, high = wilson_interval(0, 5)
        assert low == 0.0 and high < 0.6
        low, high = wilson_interval(5, 5)
        assert low > 0.4 and high == 1.0

    def test_narrows_with_more_trials(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(50, 100)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_input_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(6, 5)

    def test_detection_interval_percent(self):
        low, high = detection_interval(6, 12)
        assert 0 <= low <= 50 <= high <= 100


class TestMoments:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_stddev(self):
        assert stddev([5.0]) == 0.0
        assert stddev([1.0, 1.0, 1.0]) == 0.0
        assert stddev([0.0, 2.0]) == pytest.approx(2.0 ** 0.5)
