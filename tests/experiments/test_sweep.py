"""Tests for the fraction-sweep experiment."""

from repro.experiments import format_sweep, run_fraction_sweep
from repro.generators import alu4_like


class TestFractionSweep:
    def test_points_and_monotone_checks(self):
        points = run_fraction_sweep(
            "alu4", alu4_like(), fractions=(0.1, 0.3), selections=1,
            errors=3, patterns=100, seed=5)
        assert [p.fraction for p in points] == [0.1, 0.3]
        for point in points:
            assert set(point.detection) == {"r.p.", "0,1,X", "loc.",
                                            "oe", "ie"}
            assert point.detection["ie"] >= point.detection["oe"]
            assert all(v >= 0 for v in point.mean_seconds.values())

    def test_formatting(self):
        points = run_fraction_sweep(
            "alu4", alu4_like(), fractions=(0.15,), selections=1,
            errors=2, patterns=50, seed=1)
        text = format_sweep("alu4", points)
        assert "alu4" in text
        assert "15%" in text

    def test_cli_sweep(self, capsys):
        from repro.experiments.cli import main

        assert main(["sweep", "--benchmarks", "alu4", "--errors", "2",
                     "--selections", "1", "--patterns", "50"]) == 0
        out = capsys.readouterr().out
        assert "Detection vs boxed fraction" in out
