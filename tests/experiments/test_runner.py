"""Tests for the experiment harness."""

import pytest

from repro.experiments import (CHECKS, BenchmarkRow, ExperimentConfig,
                               run_benchmark_row, run_one_case, run_table)
from repro.generators import alu4_like, figure2b
from repro.partial import make_partial

TINY = ExperimentConfig(selections=1, errors=3, patterns=100, seed=7,
                        benchmarks=["alu4"])


class TestRunOneCase:
    def test_all_checks_reported(self):
        spec, partial = figure2b()
        results = run_one_case(spec, partial, CHECKS, patterns=100,
                               seed=0)
        assert set(results) == set(CHECKS)
        assert not results["0,1,X"].error_found
        assert results["loc."].error_found
        assert results["ie"].error_found

    def test_stats_present(self):
        spec, partial = figure2b()
        results = run_one_case(spec, partial, ("loc.", "oe"), 10, seed=0)
        for result in results.values():
            assert "impl_nodes" in result.stats
            assert result.stats["peak_nodes"] > 0


class TestRunBenchmarkRow:
    def test_row_shape_and_monotonicity(self):
        spec = alu4_like()
        config = ExperimentConfig(selections=2, errors=4, patterns=200,
                                  seed=3)
        row = run_benchmark_row("alu4", spec, config)
        assert row.cases == 8
        assert row.inputs == 14 and row.outputs == 8
        assert row.spec_nodes > 0
        ratios = [row.detection_ratio(c) for c in CHECKS]
        # aggregate detection hierarchy (strict per-case property)
        assert ratios[0] <= ratios[1] <= ratios[2] <= ratios[3] \
            <= ratios[4]
        for check in CHECKS:
            assert row.runtime[check] >= 0.0

    def test_deterministic_in_seed(self):
        spec = alu4_like()
        config = ExperimentConfig(selections=1, errors=4, patterns=50,
                                  seed=11)
        r1 = run_benchmark_row("alu4", spec, config)
        r2 = run_benchmark_row("alu4", alu4_like(), config)
        assert r1.detected == r2.detected

    def test_progress_callback(self):
        spec = alu4_like()
        seen = []
        config = ExperimentConfig(selections=1, errors=2, patterns=10,
                                  seed=1)
        run_benchmark_row("alu4", spec, config,
                          progress=seen.append)
        assert len(seen) == 2
        assert "alu4" in seen[0]


class TestRunTable:
    def test_subset_table(self):
        rows = run_table(TINY)
        assert [r.circuit for r in rows] == ["alu4"]

    def test_paper_scale_factory(self):
        config = ExperimentConfig.paper_scale(fraction=0.4)
        assert config.selections == 5
        assert config.errors == 100
        assert config.patterns == 5000
        assert config.fraction == 0.4


class TestErrors:
    def test_unknown_check_rejected(self):
        spec, partial = figure2b()
        with pytest.raises(ValueError):
            run_one_case(spec, partial, ("bogus",), 10, seed=0)
