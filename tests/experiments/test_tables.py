"""Tests for table formatting."""

import pytest

from repro.experiments import (BenchmarkRow, average_row,
                               format_detection_summary, format_table)
from repro.experiments.runner import CHECKS


def make_row(name, ratios):
    row = BenchmarkRow(circuit=name, inputs=10, outputs=5,
                       spec_nodes=123)
    row.cases = 10
    for check, ratio in zip(CHECKS, ratios):
        row.detected[check] = ratio / 10.0  # cases=10 -> percent/10
        row.impl_nodes[check] = 50.0
        row.peak_nodes[check] = 200.0
        row.runtime[check] = 0.01
    return row


class TestAverageRow:
    def test_mean_of_ratios(self):
        rows = [make_row("a", [10, 20, 30, 40, 50]),
                make_row("b", [30, 40, 50, 60, 70])]
        avg = average_row(rows)
        assert avg.detection_ratio("r.p.") == pytest.approx(20.0)
        assert avg.detection_ratio("ie") == pytest.approx(60.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_row([])


class TestFormatting:
    def test_table_contains_rows_and_average(self):
        rows = [make_row("alu4", [50, 60, 70, 80, 90])]
        text = format_table(rows, "Table 1 test")
        assert "Table 1 test" in text
        assert "alu4" in text
        assert "average" in text
        assert "90%" in text

    def test_detection_summary(self):
        rows = [make_row("comp", [10, 20, 30, 40, 50])]
        text = format_detection_summary(rows)
        assert "comp" in text and "50%" in text


class TestDegradedRendering:
    def test_clean_table_has_no_degraded_column(self):
        text = format_table([make_row("alu4", [50, 60, 70, 80, 90])],
                            "clean")
        assert "degraded" not in text
        assert "t/o" not in text

    def test_degraded_rows_get_column_and_footnote(self):
        clean = make_row("alu4", [50, 60, 70, 80, 90])
        hurt = make_row("comp", [10, 20, 30, 40, 50])
        hurt.timeouts["ie"] = 2
        hurt.check_errors["oe"] = 1
        text = format_table([clean, hurt], "degraded")
        assert "| degraded" in text
        assert "t/o" in text and "err" in text
        assert "degraded checks (excluded from detection" in text
        assert "comp — " in text
        assert "ie: 2 timeouts" in text
        assert "oe: 1 error" in text
        # the clean row gets no footnote of its own
        assert "alu4 — " not in text

    def test_valid_denominator_used_for_ratio(self):
        row = make_row("alu4", [50, 60, 70, 80, 90])
        row.detected["ie"] = 4
        for check in CHECKS:
            row.valid[check] = 10
        row.valid["ie"] = 5
        row.timeouts["ie"] = 5
        assert row.detection_ratio("ie") == pytest.approx(80.0)
        assert row.degraded_cases == 5


class TestPaperComparison:
    def test_format_comparison(self):
        from repro.experiments import PAPER_TABLE1, format_comparison

        rows = [make_row("comp", [40, 42, 45, 50, 80]),
                make_row("alu4", [90, 92, 92, 93, 94])]
        text = format_comparison(rows, PAPER_TABLE1)
        assert "comp" in text and "alu4" in text
        assert "/  90%" in text or "/ 90%" in text.replace("  ", " ")
        assert "monotone" in text

    def test_reference_tables_are_monotone(self):
        from repro.experiments import PAPER_TABLE1, PAPER_TABLE2

        for table in (PAPER_TABLE1, PAPER_TABLE2):
            for circuit, ref in table.items():
                series = [ref[c] for c in ("0,1,X", "loc.", "oe", "ie")]
                assert series == sorted(series), circuit
