"""Differential tests: packed (bit-parallel) vs scalar ternary engine.

The packed engine must be a pure accelerator: same values on every
net for every pattern, and — through ``check_random_patterns`` — the
same verdict, counterexample, failing output and tried count as the
historic scalar sweep.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError
from repro.core.random_pattern import check_random_patterns
from repro.generators.benchmarks import BENCHMARK_FACTORIES
from repro.partial.blackbox import PartialImplementation
from repro.partial.extraction import make_partial
from repro.partial.mutations import insert_random_error
from repro.sim.bitparallel import (int_to_lanes, lanes_available,
                                   lanes_to_int, pack_patterns,
                                   pack_patterns_lanes, simulate_lanes,
                                   simulate_packed, unpack_lanes,
                                   unpack_value)
from repro.sim.logic3 import ONE, X, ZERO
from repro.sim.ternary import simulate_ternary

_GATES = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
          GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF]


def _random_circuit(rng, n_inputs=4, n_gates=12, n_free=2):
    """A random netlist with some free nets (Black Box outputs)."""
    c = Circuit("rand")
    nets = c.add_inputs("i%d" % k for k in range(n_inputs))
    free = ["bb%d" % k for k in range(n_free)]
    nets = nets + free  # free nets: referenced but never driven
    for k in range(n_gates):
        gtype = rng.choice(_GATES)
        arity = 1 if gtype in (GateType.NOT, GateType.BUF) \
            else rng.randint(2, 3)
        ins = [rng.choice(nets) for _ in range(arity)]
        nets.append(c.add_gate("g%d" % k, gtype, ins))
    for net in rng.sample(nets[n_inputs:], 3):
        c.add_output(net)
    return c


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=40))
def test_packed_matches_scalar_on_random_netlists(seed, n_patterns):
    rng = random.Random(seed)
    circuit = _random_circuit(rng)
    assignments = [
        {name: bool(rng.getrandbits(1)) for name in circuit.inputs}
        for _ in range(n_patterns)]
    packed = simulate_packed(circuit, pack_patterns(circuit.inputs,
                                                    assignments),
                             n_patterns, all_nets=True)
    for p, assignment in enumerate(assignments):
        scalar = simulate_ternary(
            circuit, {k: int(v) for k, v in assignment.items()},
            all_nets=True)
        for net, expected in scalar.items():
            assert unpack_value(packed[net], p) == expected, \
                (net, p, seed)


def test_packed_free_net_override_matches_scalar():
    rng = random.Random(7)
    circuit = _random_circuit(rng)
    n = 8
    assignments = [
        {name: bool(rng.getrandbits(1)) for name in circuit.inputs}
        for _ in range(n)]
    packed_in = pack_patterns(circuit.inputs, assignments)
    # Pin one Black Box output to constant 1 in both engines.
    packed_in["bb0"] = ((1 << n) - 1, 0)
    packed = simulate_packed(circuit, packed_in, n)
    for p, assignment in enumerate(assignments):
        scalar_in = {k: int(v) for k, v in assignment.items()}
        scalar_in["bb0"] = ONE
        scalar = simulate_ternary(circuit, scalar_in)
        for net in circuit.outputs:
            assert unpack_value(packed[net], p) == scalar[net]


def test_packed_missing_input_raises():
    rng = random.Random(1)
    circuit = _random_circuit(rng)
    with pytest.raises(CircuitError):
        simulate_packed(circuit, {}, 4)


def test_unpack_value_decodes_all_three():
    assert unpack_value((0b01, 0b10), 0) == ONE
    assert unpack_value((0b01, 0b10), 1) == ZERO
    assert unpack_value((0b01, 0b10), 2) == X


@pytest.mark.parametrize("circuit_name", ["alu4", "comp"])
@pytest.mark.parametrize("case_seed", [0, 1, 2])
def test_check_engines_agree_end_to_end(circuit_name, case_seed):
    """Both engines of the r.p. check return identical CheckResults."""
    spec = BENCHMARK_FACTORIES[circuit_name]()
    partial = make_partial(spec, fraction=0.2, num_boxes=2,
                           seed=case_seed)
    mutated, _ = insert_random_error(partial.circuit,
                                     random.Random(case_seed + 3))
    impl = PartialImplementation(mutated, partial.boxes)
    scalar = check_random_patterns(spec, impl, patterns=400,
                                   seed=case_seed, engine="scalar")
    packed = check_random_patterns(spec, impl, patterns=400,
                                   seed=case_seed, engine="packed")
    assert scalar.error_found == packed.error_found
    assert scalar.counterexample == packed.counterexample
    assert scalar.failing_output == packed.failing_output
    assert scalar.stats["patterns"] == packed.stats["patterns"]
    assert scalar.detail == packed.detail


def test_unknown_engine_rejected():
    spec = BENCHMARK_FACTORIES["comp"]()
    partial = make_partial(spec, fraction=0.2, num_boxes=1, seed=0)
    with pytest.raises(ValueError):
        check_random_patterns(spec, partial, patterns=10, engine="simd")


lanes_only = pytest.mark.skipif(not lanes_available(),
                                reason="lanes engine needs numpy")


@lanes_only
class TestLanesBitIdentity:
    """Pinned-seed regression: bigint and uint64-lanes rails agree
    bit for bit, with the batch sizes chosen to straddle 64-bit word
    boundaries (the spot where an unmasked ``~`` on uint64 invents
    definite values for patterns beyond the batch)."""

    #: One below, at, and above one and two words, plus odd sizes.
    BOUNDARY_SIZES = (1, 63, 64, 65, 127, 128, 129, 200, 256)

    @pytest.mark.parametrize("n_patterns", BOUNDARY_SIZES)
    def test_rails_identical_at_word_boundaries(self, n_patterns):
        rng = random.Random(20_260_809)
        circuit = _random_circuit(rng, n_gates=30, n_free=3)
        assignments = [
            {name: bool(rng.getrandbits(1)) for name in circuit.inputs}
            for _ in range(n_patterns)]
        big = simulate_packed(circuit,
                              pack_patterns(circuit.inputs, assignments),
                              n_patterns, all_nets=True)
        lanes = simulate_lanes(
            circuit, pack_patterns_lanes(circuit.inputs, assignments),
            n_patterns, all_nets=True)
        top = 1 << n_patterns
        for net, (b1, b0) in big.items():
            l1, l0 = lanes[net]
            assert lanes_to_int(l1) == b1, (net, n_patterns)
            assert lanes_to_int(l0) == b0, (net, n_patterns)
            # X-propagation at the boundary: every bit past the batch
            # stays 0 on BOTH rails — never a phantom definite value.
            assert b1 < top and b0 < top, (net, n_patterns)
            assert lanes_to_int(l1) < top and lanes_to_int(l0) < top

    def test_int_lanes_round_trip(self):
        for n in self.BOUNDARY_SIZES:
            mask = random.Random(n).getrandbits(n)
            assert lanes_to_int(int_to_lanes(mask, n)) == mask

    def test_unpack_lanes_decodes_all_three(self):
        one = int_to_lanes(0b01, 3)
        zero = int_to_lanes(0b10, 3)
        assert unpack_lanes((one, zero), 0) == ONE
        assert unpack_lanes((one, zero), 1) == ZERO
        assert unpack_lanes((one, zero), 2) == X


@lanes_only
@pytest.mark.parametrize("circuit_name", ["alu4", "comp"])
@pytest.mark.parametrize("case_seed", [0, 1, 2])
def test_lanes_engine_agrees_end_to_end(circuit_name, case_seed):
    """engine='lanes' returns the packed engine's exact CheckResult."""
    spec = BENCHMARK_FACTORIES[circuit_name]()
    partial = make_partial(spec, fraction=0.2, num_boxes=2,
                           seed=case_seed)
    mutated, _ = insert_random_error(partial.circuit,
                                     random.Random(case_seed + 3))
    impl = PartialImplementation(mutated, partial.boxes)
    packed = check_random_patterns(spec, impl, patterns=400,
                                   seed=case_seed, engine="packed")
    lanes = check_random_patterns(spec, impl, patterns=400,
                                  seed=case_seed, engine="lanes")
    assert packed.error_found == lanes.error_found
    assert packed.counterexample == lanes.counterexample
    assert packed.failing_output == lanes.failing_output
    assert packed.stats["patterns"] == lanes.stats["patterns"]
    assert packed.detail == lanes.detail


def test_lanes_engine_without_numpy_is_a_clear_error(monkeypatch):
    import repro.sim.bitparallel as bp
    monkeypatch.setattr(bp, "_np", None)
    assert not bp.lanes_available()
    spec = BENCHMARK_FACTORIES["comp"]()
    partial = make_partial(spec, fraction=0.2, num_boxes=1, seed=0)
    with pytest.raises(RuntimeError, match="needs numpy"):
        check_random_patterns(spec, partial, patterns=10,
                              engine="lanes")
