"""Tests for plain symbolic (BDD) simulation."""

import pytest

from repro.bdd import Bdd
from repro.circuit import CircuitBuilder, CircuitError
from repro.generators import alu4_like
from repro.sim import symbolic_simulate


class TestSymbolicSimulate:
    def test_matches_scalar_evaluation(self):
        circuit = alu4_like()
        bdd = Bdd()
        fns = symbolic_simulate(circuit, bdd)
        import random
        rng = random.Random(3)
        for _ in range(50):
            asg = {n: bool(rng.getrandbits(1)) for n in circuit.inputs}
            want = circuit.evaluate(asg)
            for net in circuit.outputs:
                assert fns[net].evaluate(asg) == want[net], net

    def test_all_gate_types(self):
        builder = CircuitBuilder()
        x, y, z = (builder.input(n) for n in "xyz")
        builder.output(builder.nand_(x, y, z), "f1")
        builder.output(builder.nor_(x, y), "f2")
        builder.output(builder.xnor_(x, y, z), "f3")
        builder.output(builder.const(True), "f4")
        builder.output(builder.const(False), "f5")
        builder.output(builder.buf(x), "f6")
        circuit = builder.build()
        bdd = Bdd()
        fns = symbolic_simulate(circuit, bdd)
        for bits in range(8):
            asg = {"x": bool(bits & 1), "y": bool(bits & 2),
                   "z": bool(bits & 4)}
            want = circuit.evaluate(asg)
            for net in circuit.outputs:
                assert fns[net].evaluate(asg) == want[net]

    def test_free_net_requires_function(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        builder.output(builder.and_(a, "box"), "f")
        circuit = builder.circuit
        bdd = Bdd()
        with pytest.raises(CircuitError):
            symbolic_simulate(circuit, bdd)

    def test_free_net_with_function(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        builder.output(builder.and_(a, "box"), "f")
        circuit = builder.circuit
        bdd = Bdd()
        z = bdd.add_var("Z")
        fns = symbolic_simulate(circuit, bdd, free_functions={"box": z})
        assert set(fns["f"].support()) == {"a", "Z"}

    def test_nets_selection(self):
        circuit = alu4_like()
        bdd = Bdd()
        fns = symbolic_simulate(circuit, bdd, nets=["r0", "cout"])
        assert set(fns) == {"r0", "cout"}
        with pytest.raises(CircuitError):
            symbolic_simulate(circuit, bdd, nets=["ghost"])

    def test_input_vars_shared_across_calls(self):
        circuit = alu4_like()
        bdd = Bdd()
        f1 = symbolic_simulate(circuit, bdd)
        f2 = symbolic_simulate(circuit, bdd)
        for net in circuit.outputs:
            assert f1[net] == f2[net]
