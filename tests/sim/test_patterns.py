"""Tests for pattern generation."""

import pytest

from repro.sim import exhaustive_patterns, random_patterns


class TestRandomPatterns:
    def test_deterministic_with_seed(self):
        a = list(random_patterns(["x", "y", "z"], 20, seed=7))
        b = list(random_patterns(["x", "y", "z"], 20, seed=7))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(random_patterns(["x%d" % i for i in range(16)], 10,
                                 seed=1))
        b = list(random_patterns(["x%d" % i for i in range(16)], 10,
                                 seed=2))
        assert a != b

    def test_count_and_shape(self):
        pats = list(random_patterns(["p", "q"], 5, seed=0))
        assert len(pats) == 5
        for pat in pats:
            assert set(pat) == {"p", "q"}
            assert all(isinstance(v, bool) for v in pat.values())

    def test_zero_inputs(self):
        pats = list(random_patterns([], 3, seed=0))
        assert pats == [{}, {}, {}]


class TestExhaustivePatterns:
    def test_covers_all(self):
        pats = list(exhaustive_patterns(["a", "b", "c"]))
        assert len(pats) == 8
        assert len({tuple(sorted(p.items())) for p in pats}) == 8

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            list(exhaustive_patterns(["x%d" % i for i in range(30)]))
