"""Tests for ternary gate semantics."""

import itertools

import pytest

from repro.circuit import GateType, eval_gate
from repro.sim import ONE, X, ZERO, eval_gate3, from_bool, from_char, \
    to_char


class TestConversions:
    def test_from_bool(self):
        assert from_bool(True) == ONE
        assert from_bool(False) == ZERO
        assert from_bool(1) == ONE

    def test_char_roundtrip(self):
        for v in (ZERO, ONE, X):
            assert from_char(to_char(v)) == v
        assert from_char("-") == X
        assert from_char("x") == X
        with pytest.raises(ValueError):
            from_char("2")


class TestDefiniteAgreesWithBoolean:
    """On 0/1 inputs the ternary simulation is exactly Boolean."""

    @pytest.mark.parametrize("gtype", [
        GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
        GateType.XOR, GateType.XNOR])
    def test_binary_gates(self, gtype):
        for ins in itertools.product((False, True), repeat=3):
            want = from_bool(eval_gate(gtype, ins))
            got = eval_gate3(gtype, [from_bool(b) for b in ins])
            assert got == want

    def test_unary_gates(self):
        assert eval_gate3(GateType.NOT, [ZERO]) == ONE
        assert eval_gate3(GateType.BUF, [ONE]) == ONE
        assert eval_gate3(GateType.CONST0, []) == ZERO
        assert eval_gate3(GateType.CONST1, []) == ONE


class TestXPropagation:
    def test_controlling_values_override_x(self):
        assert eval_gate3(GateType.AND, [ZERO, X]) == ZERO
        assert eval_gate3(GateType.OR, [ONE, X]) == ONE
        assert eval_gate3(GateType.NAND, [ZERO, X]) == ONE
        assert eval_gate3(GateType.NOR, [ONE, X]) == ZERO

    def test_non_controlling_with_x_is_x(self):
        assert eval_gate3(GateType.AND, [ONE, X]) == X
        assert eval_gate3(GateType.OR, [ZERO, X]) == X
        assert eval_gate3(GateType.NOT, [X]) == X
        assert eval_gate3(GateType.BUF, [X]) == X

    def test_xor_is_pessimistic(self):
        # The well-known deficiency: X ^ X is X although any concrete
        # signal XORed with itself is 0 (Figure 2(b) of the paper).
        assert eval_gate3(GateType.XOR, [X, X]) == X
        assert eval_gate3(GateType.XOR, [ONE, X]) == X
        assert eval_gate3(GateType.XNOR, [X, ZERO]) == X

    def test_x_is_sound_abstraction(self):
        """If ternary says 0/1, every X replacement must agree."""
        for gtype in (GateType.AND, GateType.OR, GateType.NAND,
                      GateType.NOR, GateType.XOR, GateType.XNOR):
            for ins in itertools.product((ZERO, ONE, X), repeat=2):
                result = eval_gate3(gtype, list(ins))
                if result == X:
                    continue
                x_positions = [i for i, v in enumerate(ins) if v == X]
                for bits in range(1 << len(x_positions)):
                    concrete = list(ins)
                    for k, pos in enumerate(x_positions):
                        concrete[pos] = (bits >> k) & 1
                    want = from_bool(eval_gate(
                        gtype, [bool(v) for v in concrete]))
                    assert want == result, (gtype, ins)
