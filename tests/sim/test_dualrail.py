"""Tests for dual-rail symbolic 0,1,X simulation.

The key correctness property: for every input assignment, the dual-rail
pair of each output must equal the *scalar* ternary simulation value.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import Bdd
from repro.circuit import CircuitBuilder, GateType
from repro.generators import alu4_like, figure2b
from repro.partial import make_partial
from repro.sim import (ONE, X, ZERO, DualRail, dual_rail_simulate,
                       simulate_ternary)


def rails_match_scalar(circuit, samples=40, seed=0):
    bdd = Bdd()
    rails = dual_rail_simulate(circuit, bdd)
    rng = random.Random(seed)
    for _ in range(samples):
        asg = {n: bool(rng.getrandbits(1)) for n in circuit.inputs}
        scalar = simulate_ternary(
            circuit, {n: int(v) for n, v in asg.items()})
        for net in circuit.outputs:
            assert rails[net].value_at(asg) == scalar[net], (net, asg)
    return rails


class TestDualRail:
    def test_consistency_invariant(self):
        spec, partial = figure2b()
        bdd = Bdd()
        rails = dual_rail_simulate(partial.circuit, bdd)
        for rail in rails.values():
            assert rail.is_consistent()

    def test_matches_scalar_on_partial(self):
        spec, partial = figure2b()
        rails_match_scalar(partial.circuit)

    def test_matches_scalar_on_carved_alu(self):
        spec = alu4_like()
        partial = make_partial(spec, fraction=0.15, num_boxes=2, seed=4)
        rails_match_scalar(partial.circuit)

    def test_complete_circuit_has_no_unknown(self):
        spec = alu4_like()
        bdd = Bdd()
        rails = dual_rail_simulate(spec, bdd)
        for net, rail in rails.items():
            assert rail.unknown.is_false, net
            assert (rail.hi | rail.lo).is_true

    def test_invert(self):
        spec, partial = figure2b()
        bdd = Bdd()
        rails = dual_rail_simulate(partial.circuit, bdd)
        rail = rails[partial.circuit.outputs[0]]
        inv = rail.invert()
        assert inv.hi == rail.lo and inv.lo == rail.hi

    def test_xor_reconvergence_is_pessimistic(self):
        """Z ^ Z through dual rails is X everywhere (Figure 2(b))."""
        builder = CircuitBuilder()
        builder.input("a")
        builder.output(builder.xor_("z", "z"), "f")
        circuit = builder.circuit
        circuit.validate(allow_free=True)
        bdd = Bdd()
        rails = dual_rail_simulate(circuit, bdd)
        assert rails["f"].unknown.is_true

    def test_nary_gate_rails(self):
        builder = CircuitBuilder()
        a, b = builder.input("a"), builder.input("b")
        builder.output(builder.nand_(a, b, "z"), "f")
        builder.output(builder.nor_(a, "z", b), "g")
        builder.output(builder.xnor_(a, "z"), "h")
        circuit = builder.circuit
        circuit.validate(allow_free=True)
        rails_match_scalar(circuit, samples=16)

    def test_constants(self):
        builder = CircuitBuilder()
        builder.input("a")
        builder.output(builder.const(True), "one")
        builder.output(builder.const(False), "zero")
        circuit = builder.build()
        bdd = Bdd()
        rails = dual_rail_simulate(circuit, bdd)
        assert rails["one"].hi.is_true and rails["one"].lo.is_false
        assert rails["zero"].lo.is_true


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_partial_circuits_match_scalar(seed):
    """Random netlists with free nets: dual-rail == scalar ternary."""
    rng = random.Random(seed)
    builder = CircuitBuilder("rand")
    pool = [builder.input("x%d" % i) for i in range(4)] + ["bb0", "bb1"]
    for i in range(rng.randint(3, 12)):
        gtype = rng.choice([GateType.AND, GateType.OR, GateType.NAND,
                            GateType.NOR, GateType.XOR, GateType.XNOR,
                            GateType.NOT])
        fanin = 1 if gtype is GateType.NOT else rng.randint(2, 3)
        srcs = [rng.choice(pool) for _ in range(fanin)]
        pool.append(builder.gate(gtype, srcs))
    for k, net in enumerate(pool[-2:]):
        builder.output(net, "f%d" % k) if net not in ("bb0", "bb1") \
            else builder.output(builder.buf(net), "f%d" % k)
    circuit = builder.circuit
    circuit.validate(allow_free=True)
    rails_match_scalar(circuit, samples=16, seed=seed)
