"""Tests for scalar ternary circuit simulation."""

import pytest

from repro.circuit import CircuitBuilder, CircuitError
from repro.sim import ONE, X, ZERO, from_bool, simulate_ternary, \
    simulate_ternary_vector


def partial_circuit():
    """f = (a & b) | box ; g = box ^ box (always 0 for any box)."""
    builder = CircuitBuilder("p")
    a, b = builder.input("a"), builder.input("b")
    t = builder.and_(a, b)
    builder.output(builder.or_(t, "box"), "f")
    builder.output(builder.xor_("box", "box"), "g")
    circuit = builder.circuit
    circuit.validate(allow_free=True)
    return circuit


class TestSimulation:
    def test_free_nets_default_to_x(self):
        circuit = partial_circuit()
        out = simulate_ternary(circuit, {"a": ONE, "b": ZERO})
        assert out["f"] == X        # 0 | X
        assert out["g"] == X        # X ^ X, pessimistic

    def test_controlling_input_dominates_box(self):
        circuit = partial_circuit()
        out = simulate_ternary(circuit, {"a": ONE, "b": ONE})
        assert out["f"] == ONE      # 1 | X = 1

    def test_free_net_can_be_pinned(self):
        circuit = partial_circuit()
        out = simulate_ternary(circuit, {"a": ZERO, "b": ZERO,
                                         "box": ONE})
        assert out == {"f": ONE, "g": ZERO}

    def test_agrees_with_boolean_on_complete_assignments(self):
        circuit = partial_circuit()
        for bits in range(8):
            asg = {"a": bool(bits & 1), "b": bool(bits & 2),
                   "box": bool(bits & 4)}
            want = circuit.evaluate(asg)
            got = simulate_ternary(
                circuit, {k: from_bool(v) for k, v in asg.items()})
            assert got == {k: from_bool(v) for k, v in want.items()}

    def test_all_nets(self):
        circuit = partial_circuit()
        values = simulate_ternary(circuit, {"a": ONE, "b": ONE},
                                  all_nets=True)
        assert set(values) >= set(circuit.nets())

    def test_missing_input_rejected(self):
        with pytest.raises(CircuitError):
            simulate_ternary(partial_circuit(), {"a": ONE})

    def test_vector_api(self):
        circuit = partial_circuit()
        assert simulate_ternary_vector(circuit, [ONE, ONE])[0] == ONE
        with pytest.raises(CircuitError):
            simulate_ternary_vector(circuit, [ONE])

    def test_x_input_allowed(self):
        circuit = partial_circuit()
        out = simulate_ternary(circuit, {"a": X, "b": ONE})
        assert out["f"] == X
