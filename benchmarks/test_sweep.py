"""Regenerates the fraction-sweep data series (the evaluation's
natural "figure": detection vs boxed fraction, cf. the paper's 40%
remark in Section 3)."""

import pytest

from repro.experiments import format_sweep, run_fraction_sweep
from repro.generators.benchmarks import BENCHMARK_FACTORIES

from conftest import table_config

_BASE = table_config()


@pytest.mark.parametrize("name", ["alu4", "comp", "term1"])
def test_fraction_sweep(benchmark, name, capsys):
    spec = BENCHMARK_FACTORIES[name]()

    def sweep():
        return run_fraction_sweep(
            name, spec, fractions=(0.1, 0.25, 0.4),
            selections=_BASE.selections, errors=_BASE.errors,
            patterns=_BASE.patterns, seed=77)

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_sweep(name, points))
    # the input-exact rung dominates every weaker rung at each fraction
    for point in points:
        assert point.detection["ie"] >= point.detection["oe"] \
            >= point.detection["loc."]
