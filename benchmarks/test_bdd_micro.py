"""Micro-benchmarks of the BDD substrate itself."""

import pytest

from repro.bdd import Bdd
from repro.generators import alu4_like, c880_like
from repro.generators.comparator import magnitude_comparator
from repro.sim import symbolic_simulate


def test_bench_symbolic_simulation_alu4(benchmark):
    spec = alu4_like()

    def build():
        bdd = Bdd()
        return symbolic_simulate(spec, bdd)

    benchmark(build)


def test_bench_symbolic_simulation_c880(benchmark):
    spec = c880_like()

    def build():
        bdd = Bdd()
        return symbolic_simulate(spec, bdd)

    benchmark(build)


def test_bench_sifting_pass(benchmark):
    """One full sifting pass over a deliberately bad variable order."""
    spec = magnitude_comparator(10)
    bad_order = [n for n in spec.inputs if n.startswith("a")] \
        + [n for n in spec.inputs if n.startswith("b")]
    shuffled = spec.with_input_order(bad_order)

    def build_and_sift():
        bdd = Bdd()
        fns = symbolic_simulate(shuffled, bdd)
        before = len(bdd)
        bdd.reorder()
        return before, len(bdd)

    before, after = benchmark(build_and_sift)
    assert after < before


def test_bench_quantification(benchmark):
    spec = alu4_like()
    bdd = Bdd()
    fns = symbolic_simulate(spec, bdd)
    outs = [fns[n] for n in spec.outputs]
    half = spec.inputs[:7]

    def quantify():
        acc = bdd.true
        for f in outs:
            acc = acc & f.exists(half)
        return acc

    benchmark(quantify)


def test_bench_garbage_collection(benchmark):
    spec = alu4_like()

    def churn():
        bdd = Bdd()
        fns = symbolic_simulate(spec, bdd)
        keep = fns[spec.outputs[0]]
        del fns
        freed = bdd.collect_garbage()
        return freed

    freed = benchmark(churn)
    assert freed > 0


def test_bench_budget_overhead():
    """Budget governance costs <= 5% on the symbolic hot path.

    Compares symbolic simulation with no budget attached (one countdown
    test per hot event) against a manager governed by an unlimited
    budget.  CPU time, not wall clock — co-tenant interference on a
    shared box otherwise dominates the few-percent signal; minimum over
    rounds with alternating measurement order cancels what remains.
    """
    import time

    from repro.resilience import Budget

    spec = alu4_like()

    def build(budget):
        bdd = Bdd()
        if budget is not None:
            bdd.set_budget(budget)
        symbolic_simulate(spec, bdd)

    def sample(budget, inner=5):
        t0 = time.process_time()
        for _ in range(inner):
            build(budget)
        return time.process_time() - t0

    unlimited = Budget(max_live_nodes=10**9, wall_seconds=10**6)

    def measure():
        for _ in range(2):  # warm-up (imports, allocator, caches)
            build(None)
            build(unlimited)
        plain = governed = float("inf")
        for i in range(10):
            if i % 2 == 0:
                plain = min(plain, sample(None))
                governed = min(governed, sample(unlimited))
            else:
                governed = min(governed, sample(unlimited))
                plain = min(plain, sample(None))
        return governed / plain - 1.0

    overhead = measure()
    if overhead > 0.05:  # one retry: a noisy neighbour is not a fail
        overhead = min(overhead, measure())
    assert overhead <= 0.05, \
        "budget overhead %.1f%% exceeds 5%%" % (100 * overhead)
