"""Micro-benchmarks of the BDD substrate itself."""

import pytest

from repro.bdd import Bdd
from repro.generators import alu4_like, c880_like
from repro.generators.comparator import magnitude_comparator
from repro.sim import symbolic_simulate


def test_bench_symbolic_simulation_alu4(benchmark):
    spec = alu4_like()

    def build():
        bdd = Bdd()
        return symbolic_simulate(spec, bdd)

    benchmark(build)


def test_bench_symbolic_simulation_c880(benchmark):
    spec = c880_like()

    def build():
        bdd = Bdd()
        return symbolic_simulate(spec, bdd)

    benchmark(build)


def test_bench_sifting_pass(benchmark):
    """One full sifting pass over a deliberately bad variable order."""
    spec = magnitude_comparator(10)
    bad_order = [n for n in spec.inputs if n.startswith("a")] \
        + [n for n in spec.inputs if n.startswith("b")]
    shuffled = spec.with_input_order(bad_order)

    def build_and_sift():
        bdd = Bdd()
        fns = symbolic_simulate(shuffled, bdd)
        before = len(bdd)
        bdd.reorder()
        return before, len(bdd)

    before, after = benchmark(build_and_sift)
    assert after < before


def test_bench_quantification(benchmark):
    spec = alu4_like()
    bdd = Bdd()
    fns = symbolic_simulate(spec, bdd)
    outs = [fns[n] for n in spec.outputs]
    half = spec.inputs[:7]

    def quantify():
        acc = bdd.true
        for f in outs:
            acc = acc & f.exists(half)
        return acc

    benchmark(quantify)


def test_bench_garbage_collection(benchmark):
    spec = alu4_like()

    def churn():
        bdd = Bdd()
        fns = symbolic_simulate(spec, bdd)
        keep = fns[spec.outputs[0]]
        del fns
        freed = bdd.collect_garbage()
        return freed

    freed = benchmark(churn)
    assert freed > 0
