"""Regenerates Table 1: 10% of the gates in ONE Black Box.

One benchmark per circuit row; the final test assembles and prints the
table in the paper's layout.  Campaign size is controlled by
``REPRO_BENCH_SCALE`` (see conftest).
"""

import pytest

from repro.experiments import (CHECKS, PAPER_TABLE1,
                               format_comparison, format_table,
                               run_benchmark_row)
from repro.generators.benchmarks import BENCHMARK_FACTORIES, \
    BENCHMARK_NAMES

from conftest import table_config

CONFIG = table_config(fraction=0.1, num_boxes=1, seed=2001)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_table1_row(benchmark, name, bench_rows_cache):
    spec = BENCHMARK_FACTORIES[name]()

    def campaign():
        return run_benchmark_row(name, spec, CONFIG)

    row = benchmark.pedantic(campaign, rounds=1, iterations=1)
    bench_rows_cache[("table1", name)] = row
    # qualitative shape of the paper's Table 1: monotone detection power
    ratios = [row.detection_ratio(c) for c in CHECKS]
    assert ratios == sorted(ratios), (name, ratios)


def test_table1_print(benchmark, bench_rows_cache, capsys):
    rows = [bench_rows_cache[("table1", name)]
            for name in BENCHMARK_NAMES
            if ("table1", name) in bench_rows_cache]
    if not rows:
        pytest.skip("row benchmarks did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            rows,
            "Table 1: 10%% of the gates included in one Black Box "
            "(%d selections x %d errors)"
            % (CONFIG.selections, CONFIG.errors)))
        print()
        print("measured vs paper (detection ratios):")
        print(format_comparison(rows, PAPER_TABLE1))
