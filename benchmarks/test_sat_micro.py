"""Micro-benchmarks of the SAT backend (the future-work comparison)."""

import random

import pytest

from repro.generators import alu4_like
from repro.generators.comparator import magnitude_comparator
from repro.partial import PartialImplementation, insert_random_error, \
    make_partial
from repro.sat import (Solver, build_miter, check_equivalence_sat,
                       check_output_exact_sat, check_symbolic_01x_sat)


@pytest.fixture(scope="module")
def case():
    spec = alu4_like()
    partial = make_partial(spec, fraction=0.1, num_boxes=1, seed=12)
    mutated, _ = insert_random_error(partial.circuit, random.Random(3))
    return spec, PartialImplementation(mutated, partial.boxes)


def test_bench_miter_unsat(benchmark):
    spec = magnitude_comparator(10)
    clone = spec.copy()

    def prove():
        return check_equivalence_sat(spec, clone)

    result = benchmark(prove)
    assert result.equivalent


def test_bench_miter_sat(benchmark):
    spec = alu4_like()
    mutant, _ = insert_random_error(spec, random.Random(5))

    def refute():
        return check_equivalence_sat(spec, mutant)

    benchmark(refute)


def test_bench_sat_01x_check(benchmark, case):
    spec, partial = case
    benchmark(lambda: check_symbolic_01x_sat(spec, partial))


def test_bench_cegar_output_exact(benchmark, case):
    spec, partial = case
    result = benchmark(lambda: check_output_exact_sat(spec, partial))


def test_bench_raw_solver_throughput(benchmark):
    rng = random.Random(7)
    n, m = 60, 240
    clauses = [[v * rng.choice((1, -1))
                for v in rng.sample(range(1, n + 1), 3)]
               for _ in range(m)]

    def solve():
        solver = Solver()
        solver.ensure_vars(n)
        for clause in clauses:
            solver.add_clause(clause)
        return solver.solve()

    benchmark(solve)
