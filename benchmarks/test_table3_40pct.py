"""Regenerates the Section 3 variant: 40% of the gates in one Black Box.

The paper reports this experiment led "to comparable results" and defers
the table to the technical report; we regenerate it the same way as
Table 1 with fraction = 0.4.
"""

import pytest

from repro.experiments import CHECKS, format_table, run_benchmark_row
from repro.generators.benchmarks import BENCHMARK_FACTORIES, \
    BENCHMARK_NAMES

from conftest import table_config

CONFIG = table_config(fraction=0.4, num_boxes=1, seed=2040)

# apex3 is excluded at the 40% fraction: its PLA structure gives the
# carved box a ~40-pin interface whose input-exact relation exceeds a
# pure-Python BDD budget (the analogue of the paper's own C880
# 22-minute outlier).  The exclusion is printed, never silent.
NAMES_40 = [n for n in BENCHMARK_NAMES if n != "apex3"]


@pytest.mark.parametrize("name", NAMES_40)
def test_table40_row(benchmark, name, bench_rows_cache):
    spec = BENCHMARK_FACTORIES[name]()

    def campaign():
        return run_benchmark_row(name, spec, CONFIG)

    row = benchmark.pedantic(campaign, rounds=1, iterations=1)
    bench_rows_cache[("table40", name)] = row
    ratios = [row.detection_ratio(c) for c in CHECKS]
    assert ratios == sorted(ratios), (name, ratios)


def test_table40_print(benchmark, bench_rows_cache, capsys):
    rows = [bench_rows_cache[("table40", name)]
            for name in NAMES_40
            if ("table40", name) in bench_rows_cache]
    if not rows:
        pytest.skip("row benchmarks did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("note: apex3 omitted at 40% (intractable box interface; "
              "see module docstring)")
        print(format_table(
            rows,
            "40%% variant: 40%% of the gates in one Black Box "
            "(%d selections x %d errors)"
            % (CONFIG.selections, CONFIG.errors)))
