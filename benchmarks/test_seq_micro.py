"""Micro-benchmarks for the sequential (bounded) extension."""

import pytest

from repro.circuit import CircuitBuilder, GateType
from repro.partial import BlackBox
from repro.seq import (Latch, SequentialCircuit,
                       check_bounded_equivalence,
                       check_sequential_partial, unroll)


def make_counter(width, name="cnt"):
    builder = CircuitBuilder(name)
    enable = builder.input("en")
    states = [builder.input("q%d" % i) for i in range(width)]
    carry = enable
    for i in range(width):
        builder.gate(GateType.XOR, [states[i], carry], out="nx%d" % i)
        carry = builder.and_(states[i], carry)
    for i in range(width):
        builder.output(builder.buf(states[i]), "out%d" % i)
    core = builder.circuit
    core.validate()
    return SequentialCircuit(
        core, [Latch("q%d" % i, "nx%d" % i) for i in range(width)],
        name=name)


def test_bench_unroll(benchmark):
    machine = make_counter(8)
    flat = benchmark(lambda: unroll(machine, 12))
    assert flat.num_gates > machine.core.num_gates


def test_bench_bounded_equivalence(benchmark):
    spec = make_counter(6)
    impl = make_counter(6, "other")
    result = benchmark(
        lambda: check_bounded_equivalence(spec, impl, frames=8))
    assert result.equivalent


def test_bench_sequential_partial_ladder(benchmark):
    spec = make_counter(5)
    core = make_counter(5, "boxed").core.copy()
    core.remove_gate("nx2")
    partial = SequentialCircuit(
        core, [Latch("q%d" % i, "nx%d" % i) for i in range(5)])
    boxes = [BlackBox("INC2", ("q2", "q1", "q0", "en"), ("nx2",))]

    def run():
        return check_sequential_partial(
            spec, partial, boxes, frames=5, patterns=100, seed=0,
            stop_at_first_error=False)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not any(r.error_found for r in results)


def test_bench_unbounded_equivalence(benchmark):
    from repro.seq import check_unbounded_equivalence

    spec = make_counter(6)
    impl = make_counter(6, "other")
    result = benchmark.pedantic(
        lambda: check_unbounded_equivalence(spec, impl),
        rounds=1, iterations=1)
    assert result.equivalent
    assert result.reachable_count == 64
