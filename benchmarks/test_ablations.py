"""Ablation benchmarks for the design choices called out in DESIGN.md.

Each pair times the same computation with a feature on and off:

* scheduled quantification (bucket elimination) vs monolithic conjoin,
* dynamic variable reordering vs static order,
* warm-started (pre-sifted) input order vs declaration order,
* connected vs scattered Black Box selection (detection-quality
  ablation, printed rather than asserted).
"""

import random

import pytest

from repro.bdd import Bdd, default_bdd
from repro.core import exists_conj, prepare_context
from repro.core.output_exact import output_exact_from_context
from repro.experiments.runner import _tune_spec
from repro.generators import alu4_like, c880_like, term1_like
from repro.partial import (PartialImplementation, insert_random_error,
                           make_partial)


@pytest.fixture(scope="module")
def ecc_case():
    """A many-output instance where per-output distribution matters:
    apex3 (50 outputs) with a carved box, mutated.  The monolithic form
    must build the legality relation over all 50 conditions; the
    distributed form skips the ~45 untouched outputs entirely."""
    from repro.generators.random_logic import apex3_like

    spec, _ = _tune_spec(apex3_like())
    partial = make_partial(spec, fraction=0.1, num_boxes=1, seed=9)
    mutated, _ = insert_random_error(partial.circuit, random.Random(2))
    return spec, PartialImplementation(mutated, partial.boxes)


def _monolithic_cond_prime(ctx):
    """The textbook construction: build the full legality relation and
    run one big relational product (what the distributed form avoids)."""
    from repro.core.common import box_input_var_name
    from repro.core.input_exact import _box_input_functions
    from repro.core.output_exact import legal_z_relation

    bdd = ctx.bdd
    cond = legal_z_relation(ctx)
    h_all = bdd.true
    for box in ctx.partial.boxes:
        for position, h in enumerate(
                _box_input_functions(ctx)[box.name]):
            name = box_input_var_name(box.name, position)
            i_var = bdd.var(name) if bdd.has_var(name) \
                else bdd.add_var(name)
            h_all = h_all & i_var.equiv(h)
    return ~h_all.and_exists(~cond, ctx.input_names)


class TestQuantificationScheduling:
    """Distributed per-output cond' (with tautology skipping and bucket
    elimination) vs the monolithic legality-relation construction."""

    def test_bench_scheduled(self, benchmark, ecc_case):
        from repro.core.input_exact import build_cond_prime

        spec, partial = ecc_case

        def scheduled():
            ctx = prepare_context(spec, partial, default_bdd())
            return build_cond_prime(ctx)[0]

        benchmark.pedantic(scheduled, rounds=1, iterations=1)

    def test_bench_monolithic(self, benchmark, ecc_case):
        spec, partial = ecc_case

        def monolithic():
            ctx = prepare_context(spec, partial, default_bdd())
            return _monolithic_cond_prime(ctx)

        benchmark.pedantic(monolithic, rounds=1, iterations=1)

    def test_results_agree(self, ecc_case):
        from repro.core.input_exact import build_cond_prime

        spec, partial = ecc_case
        ctx = prepare_context(spec, partial, default_bdd())
        assert build_cond_prime(ctx)[0] == _monolithic_cond_prime(ctx)


class TestDynamicReordering:
    """Sifting on vs off under a hostile declaration order.

    A comparator declared all-a's-then-all-b's has exponential BDDs in
    that order; dynamic sifting recovers the interleaved linear order.
    """

    @staticmethod
    def _hostile_spec():
        from repro.generators.comparator import magnitude_comparator

        spec = magnitude_comparator(13)
        return spec.with_input_order(
            [n for n in spec.inputs if n.startswith("a")]
            + [n for n in spec.inputs if n.startswith("b")])

    def _build(self, bdd):
        from repro.sim import symbolic_simulate

        spec = self._hostile_spec()
        fns = symbolic_simulate(spec, bdd)
        return bdd.manager.size([fns[n].node for n in spec.outputs])

    def test_bench_with_reordering(self, benchmark, capsys):
        bdd = Bdd(auto_reorder=True, initial_reorder_threshold=5000)
        size = benchmark.pedantic(lambda: self._build(bdd),
                                  rounds=1, iterations=1)
        with capsys.disabled():
            print("\nspec nodes with sifting: %d (peak %d)"
                  % (size, bdd.peak_live_nodes))

    def test_bench_without_reordering(self, benchmark, capsys):
        bdd = Bdd(auto_reorder=False)
        size = benchmark.pedantic(lambda: self._build(bdd),
                                  rounds=1, iterations=1)
        with capsys.disabled():
            print("\nspec nodes without sifting: %d (peak %d)"
                  % (size, bdd.peak_live_nodes))

    def test_reordering_shrinks_hostile_order(self):
        with_r = Bdd(auto_reorder=True, initial_reorder_threshold=5000)
        without = Bdd(auto_reorder=False)
        assert self._build(with_r) < self._build(without) / 4


class TestWarmStartedOrder:
    def test_bench_tuned_order(self, benchmark):
        spec, _ = _tune_spec(c880_like())
        partial = make_partial(spec, fraction=0.1, num_boxes=1, seed=3)

        def check():
            ctx = prepare_context(spec, partial, default_bdd())
            return output_exact_from_context(ctx)

        benchmark.pedantic(check, rounds=1, iterations=1)

    def test_bench_declaration_order(self, benchmark):
        spec = c880_like()
        partial = make_partial(spec, fraction=0.1, num_boxes=1, seed=3)

        def check():
            ctx = prepare_context(spec, partial, default_bdd())
            return output_exact_from_context(ctx)

        benchmark.pedantic(check, rounds=1, iterations=1)


class TestBoxSelectionStrategy:
    @pytest.mark.parametrize("connected", [True, False],
                             ids=["connected", "scattered"])
    def test_bench_detection_by_strategy(self, benchmark, connected,
                                         capsys):
        """Connected boxes have narrow interfaces; scattered boxes see
        more signals, changing both cost and what each check can
        conclude.  Printed for inspection."""
        spec = term1_like()

        def campaign():
            from repro.core import check_input_exact, check_output_exact

            partial = make_partial(spec, fraction=0.1, num_boxes=2,
                                   seed=9, connected=connected)
            rng = random.Random(5)
            found = {"oe": 0, "ie": 0}
            for _ in range(4):
                mutated, _ = insert_random_error(partial.circuit, rng)
                case = PartialImplementation(mutated, partial.boxes)
                found["oe"] += check_output_exact(
                    spec, case).error_found
                found["ie"] += check_input_exact(
                    spec, case).error_found
            return found

        found = benchmark.pedantic(campaign, rounds=1, iterations=1)
        assert found["ie"] >= found["oe"]


class TestWitnessMinimization:
    """Don't-care minimization of synthesized boxes (S11 + restrict)."""

    @pytest.fixture(scope="class")
    def carved(self):
        from repro.generators.comparator import magnitude_comparator

        spec = magnitude_comparator(8)
        partial = make_partial(spec, fraction=0.25, num_boxes=1, seed=3)
        return spec, partial

    def test_bench_plain_synthesis(self, benchmark, carved):
        from repro.core import synthesize_single_box

        spec, partial = carved
        witness = benchmark.pedantic(
            lambda: synthesize_single_box(spec, partial),
            rounds=1, iterations=1)
        assert witness is not None

    def test_bench_minimized_synthesis(self, benchmark, carved):
        from repro.core import synthesize_single_box

        spec, partial = carved
        witness = benchmark.pedantic(
            lambda: synthesize_single_box(spec, partial, minimize=True),
            rounds=1, iterations=1)
        assert witness is not None

    def test_minimized_is_smaller(self, carved, capsys):
        from repro.core import synthesize_single_box

        spec, partial = carved
        plain = synthesize_single_box(spec, partial)
        small = synthesize_single_box(spec, partial, minimize=True)
        with capsys.disabled():
            print("\nwitness gates: plain %d, minimized %d"
                  % (plain.num_gates, small.num_gates))
        assert small.num_gates <= plain.num_gates
