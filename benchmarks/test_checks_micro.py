"""Micro-benchmarks: one invocation of each check on a fixed case.

These time the five rungs of the ladder individually, on the same
mutated partial implementation — the per-check "run time" columns of the
paper's tables in isolation.
"""

import random

import pytest

from repro.bdd import default_bdd
from repro.core import (check_input_exact, check_local,
                        check_output_exact, check_random_patterns,
                        check_symbolic_01x, prepare_context)
from repro.core.input_exact import input_exact_from_context
from repro.core.local_check import local_check_from_context
from repro.core.output_exact import output_exact_from_context
from repro.generators import alu4_like
from repro.partial import PartialImplementation, insert_random_error, \
    make_partial


@pytest.fixture(scope="module")
def case():
    spec = alu4_like()
    partial = make_partial(spec, fraction=0.1, num_boxes=1, seed=12)
    mutated, _ = insert_random_error(partial.circuit, random.Random(3))
    return spec, PartialImplementation(mutated, partial.boxes)


def test_bench_random_pattern(benchmark, case):
    spec, partial = case
    benchmark(lambda: check_random_patterns(spec, partial,
                                            patterns=1000, seed=0))


def test_bench_symbolic_01x(benchmark, case):
    spec, partial = case
    benchmark(lambda: check_symbolic_01x(spec, partial, default_bdd()))


def test_bench_local(benchmark, case):
    spec, partial = case
    benchmark(lambda: check_local(spec, partial, default_bdd()))


def test_bench_output_exact(benchmark, case):
    spec, partial = case
    benchmark(lambda: check_output_exact(spec, partial, default_bdd()))


def test_bench_input_exact(benchmark, case):
    spec, partial = case
    benchmark(lambda: check_input_exact(spec, partial, default_bdd()))


def test_bench_context_preparation(benchmark, case):
    """The shared Z_i simulation cost (spec + impl BDD construction)."""
    spec, partial = case
    benchmark(lambda: prepare_context(spec, partial, default_bdd()))


def test_bench_ladder_rungs_shared_context(benchmark, case):
    """local + output exact + input exact on one shared context —
    how the ladder driver actually runs them."""
    spec, partial = case

    def rungs():
        ctx = prepare_context(spec, partial, default_bdd())
        local_check_from_context(ctx)
        output_exact_from_context(ctx)
        return input_exact_from_context(ctx)

    benchmark(rungs)
