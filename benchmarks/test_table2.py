"""Regenerates Table 2: 10% of the gates in FIVE Black Boxes."""

import pytest

from repro.experiments import (CHECKS, PAPER_TABLE2,
                               format_comparison, format_table,
                               run_benchmark_row)
from repro.generators.benchmarks import BENCHMARK_FACTORIES, \
    BENCHMARK_NAMES

from conftest import table_config

CONFIG = table_config(fraction=0.1, num_boxes=5, seed=2002)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_table2_row(benchmark, name, bench_rows_cache):
    spec = BENCHMARK_FACTORIES[name]()

    def campaign():
        return run_benchmark_row(name, spec, CONFIG)

    row = benchmark.pedantic(campaign, rounds=1, iterations=1)
    bench_rows_cache[("table2", name)] = row
    ratios = [row.detection_ratio(c) for c in CHECKS]
    assert ratios == sorted(ratios), (name, ratios)


def test_table2_print(benchmark, bench_rows_cache, capsys):
    rows = [bench_rows_cache[("table2", name)]
            for name in BENCHMARK_NAMES
            if ("table2", name) in bench_rows_cache]
    if not rows:
        pytest.skip("row benchmarks did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            rows,
            "Table 2: 10%% of the gates included in five Black Boxes "
            "(%d selections x %d errors)"
            % (CONFIG.selections, CONFIG.errors)))
        print()
        print("measured vs paper (detection ratios):")
        print(format_comparison(rows, PAPER_TABLE2))
