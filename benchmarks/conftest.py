"""Shared configuration for the benchmark suite.

Campaign sizes are deliberately small so ``pytest benchmarks/
--benchmark-only`` completes in minutes of pure-Python time; set
``REPRO_BENCH_SCALE`` to scale the number of selections/errors up
(``REPRO_BENCH_SCALE=paper`` runs the original 5 x 100 campaign — hours).
"""

import os

import pytest

from repro.experiments import ExperimentConfig


def table_config(**overrides):
    """Benchmark-sized ExperimentConfig honouring REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "")
    if scale == "paper":
        return ExperimentConfig.paper_scale(**overrides)
    if scale:
        factor = int(scale)
        params = dict(selections=min(5, factor), errors=3 * factor,
                      patterns=500)
        params.update(overrides)
        return ExperimentConfig(**params)
    params = dict(selections=1, errors=3, patterns=300)
    params.update(overrides)
    return ExperimentConfig(**params)


@pytest.fixture(scope="session")
def bench_rows_cache():
    """Session-wide cache so printing and timing reuse campaign runs."""
    return {}
