"""Static-analysis cost contract: a cheap rung 0, a fast warm cache.

Two bounds from ``docs/static-analysis.md``:

* **Cold overhead <= 5%.**  Hashing + ternary preflight + cold cache
  traffic on a full ladder run (C880-class circuit, where check time
  dominates) must cost at most 5% CPU.  The static pass is one linear
  sweep per netlist while the rungs it fronts are worst-case
  exponential, so the ratio only improves as circuits grow; tiny
  circuits pay proportionally more but trivially little in absolute
  terms.
* **Warm speedup >= 5x.**  Re-running a campaign against a populated
  check cache must be at least 5x faster than the cold run that filled
  it, while aggregating to a byte-identical CSV — the cache replays
  verdicts, it never re-derives them.

CPU time, not wall clock — co-tenant interference on a shared box
otherwise dominates the signal; minimum over rounds with alternating
measurement order cancels what remains (same methodology as
``test_obs_micro.py``).

Runs standalone (``python benchmarks/test_static_micro.py``) so the CI
static-analysis job needs no pytest; run with ``--record`` to refresh
the tracked ``BENCH_PR6.json``.  Pytest also collects both tests.
"""

import json
import os
import shutil
import sys
import tempfile
import time

from repro.core.ladder import run_ladder
from repro.experiments.export import rows_to_csv
from repro.experiments.runner import ExperimentConfig, run_table
from repro.generators import benchmark_circuit
from repro.jobs.worker import clear_caches
from repro.partial.extraction import make_partial

_LIMIT_OVERHEAD = 0.05
_LIMIT_SPEEDUP = 5.0


def _ladder_workload():
    spec = benchmark_circuit("C880")
    partial = make_partial(spec, fraction=0.25, num_boxes=1, seed=11)
    return spec, partial


def test_bench_static_cold_overhead():
    """Hash + preflight + cold cache cost <= 5% on a C880 ladder."""
    spec, partial = _ladder_workload()

    def run(static):
        if static:
            root = tempfile.mkdtemp(prefix="static-bench-")
            try:
                run_ladder(spec, partial, patterns=256, seed=5,
                           preflight=True, cache=root)
            finally:
                shutil.rmtree(root, ignore_errors=True)
        else:
            run_ladder(spec, partial, patterns=256, seed=5)

    def sample(static):
        t0 = time.process_time()
        run(static)
        return time.process_time() - t0

    def measure():
        run(False)  # warm-up (imports, allocator, caches)
        run(True)
        plain = static = float("inf")
        for i in range(6):
            if i % 2 == 0:
                plain = min(plain, sample(False))
                static = min(static, sample(True))
            else:
                static = min(static, sample(True))
                plain = min(plain, sample(False))
        return static / plain - 1.0

    overhead = measure()
    if overhead > _LIMIT_OVERHEAD:  # one retry: noisy neighbours
        overhead = min(overhead, measure())
    assert overhead <= _LIMIT_OVERHEAD, \
        "static cold-path overhead %.1f%% exceeds %d%%" \
        % (100 * overhead, 100 * _LIMIT_OVERHEAD)
    return overhead


def _campaign_config(cache_root):
    # Enough error cases that per-case check time dominates the
    # once-per-benchmark spec setup the warm run still pays.
    return ExperimentConfig(selections=1, errors=12, patterns=300,
                            benchmarks=["alu4", "comp"],
                            preflight=True, check_cache=cache_root)


def test_bench_warm_cache_speedup():
    """A warm cache replays the campaign >= 5x faster, byte-identical."""
    root = tempfile.mkdtemp(prefix="static-bench-")
    try:
        config = _campaign_config(os.path.join(root, "cache"))

        def sample():
            clear_caches()  # both runs rebuild in-process spec caches
            t0 = time.process_time()
            rows = run_table(config)
            return time.process_time() - t0, rows

        cold_s, cold = sample()
        warm_s, warm = sample()
        assert rows_to_csv(cold) == rows_to_csv(warm), \
            "warm re-run aggregated differently from the cold run"
        hits = sum(sum(row.check_cache_hits.values()) for row in warm)
        assert hits > 0, "warm run never hit the cache"
        speedup = cold_s / warm_s
        assert speedup >= _LIMIT_SPEEDUP, \
            "warm cache speedup %.1fx below %.0fx (cold %.2fs, warm " \
            "%.2fs)" % (speedup, _LIMIT_SPEEDUP, cold_s, warm_s)
        return {"cold_cpu_s": round(cold_s, 4),
                "warm_cpu_s": round(warm_s, 4),
                "speedup": round(speedup, 2),
                "check_cache_hits": hits}
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    measured_overhead = test_bench_static_cold_overhead()
    print("static cold-path overhead: %+.2f%% (limit %d%%)"
          % (100 * measured_overhead, 100 * _LIMIT_OVERHEAD))
    warm = test_bench_warm_cache_speedup()
    print("warm cache speedup: %.1fx (limit %.0fx, %d hits)"
          % (warm["speedup"], _LIMIT_SPEEDUP, warm["check_cache_hits"]))
    if "--record" in sys.argv:
        payload = {
            "cold_overhead": round(measured_overhead, 4),
            "cold_overhead_limit": _LIMIT_OVERHEAD,
            "warm_cache": warm,
            "warm_speedup_limit": _LIMIT_SPEEDUP,
            "workloads": {
                "cold_overhead": "C880 fraction=0.25 boxes=1 seed=11 "
                                 "patterns=256",
                "warm_cache": "table1 alu4,comp selections=1 errors=12 "
                              "patterns=300 preflight",
            },
        }
        with open("BENCH_PR6.json", "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote BENCH_PR6.json")
    sys.exit(0)
