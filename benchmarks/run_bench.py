#!/usr/bin/env python
"""Tracked before/after benchmark of the check stack (BENCH_*.json).

Three workload families, mirroring the paper's experiment structure:

* ``ladder_t2_*`` / ``ladder_t3_*`` — full check ladders on Table-2 /
  Table-3 shaped cases with one inserted error (the campaign's "find
  the bug" path);
* ``ladder_clean_*`` — the same shapes without an inserted error, so
  every rung up to the exact proofs runs to completion (the campaign's
  "prove it correct" path — this is where the symbolic rungs dominate);
* ``rp_*`` — the paper's "r.p." column: the random-pattern rung alone
  at the paper's 5000-pattern budget on an error-free partial, i.e. a
  full pattern sweep with no early exit.

Every workload is timed on up to three stacks, same interpreter, same
host (per-bench ratios are therefore host-independent, unlike absolute
seconds):

* **legacy** — the frozen pre-rewrite reference (:mod:`repro.bdd._legacy`:
  recursive kernels, unbounded single computed table, historic sifting
  swap) plus the scalar one-pattern-at-a-time random-pattern engine;
* **current** — the iterative dict manager plus the bit-parallel
  bigint pattern engine (``wall_s``/``speedup`` keep their BENCH_PR4
  meaning);
* **arena** — the numpy struct-of-arrays manager
  (:mod:`repro.bdd.arena`) plus the uint64-lanes pattern engine
  (``arena_*`` columns; omitted when numpy is unavailable).

Each ladder check runs on a fresh manager (``run_one_case``), exactly
as the campaign that produces the paper's tables does.

Output schema (``BENCH_PR9.json``)::

    {"meta":    {"python": "3.11.7", "quick": false, "patterns": 5000},
     "benches": {"ladder_t2_alu4": {"wall_s": 0.41,
                                    "peak_nodes": 9182,
                                    "cache_hit_rate": 0.41,
                                    "legacy_wall_s": 0.58,
                                    "legacy_peak_nodes": 9182,
                                    "speedup": 1.41,
                                    "arena_wall_s": 0.39,
                                    "arena_peak_nodes": 9182,
                                    "arena_cache_hit_rate": 0.41,
                                    "arena_speedup": 1.49}, ...},
     "aggregate": {"wall_s": ..., "legacy_wall_s": ..., "speedup": ...,
                   "arena_wall_s": ..., "arena_speedup": ...},
     "sat_vs_bdd": {"sat_vs_bdd_comp": {"symbolic_01x": {
                        "bdd_wall_s": ..., "sat_wall_s": ...,
                        "ratio": ..., "portfolio_winner": "bdd"},
                    "output_exact": {...}}, ...}}

The ``sat_vs_bdd`` section times the two rungs with CNF encodings on
both engines and records the deterministic portfolio's pick; it is
trajectory only — never compared by ``--baseline`` (``--no-sat``
skips it; see docs/sat.md and docs/performance.md).

Usage::

    python benchmarks/run_bench.py                      # full suite
    python benchmarks/run_bench.py --quick              # CI smoke (fast)
    python benchmarks/run_bench.py --baseline BENCH_PR9.json
    python benchmarks/run_bench.py -o BENCH_PR9.json \
        --min-arena-speedup 5.0

``--baseline`` compares the measured per-bench *speedup ratios* against
a committed BENCH_*.json and exits non-zero when any common bench
regressed by more than ``--tolerance`` (default 25%).
``--min-arena-speedup`` additionally requires the pooled arena-stack
speedup over legacy to reach the given floor (the PR-9 acceptance gate
is 5.0), and errors out with the arena's structured diagnostic when
numpy is missing rather than passing vacuously.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.bdd import arena_available                     # noqa: E402
from repro.bdd._legacy import default_legacy_bdd          # noqa: E402
from repro.bdd.function import default_bdd                # noqa: E402
from repro.core.random_pattern import check_random_patterns  # noqa: E402
from repro.experiments.runner import CHECKS, run_one_case  # noqa: E402
from repro.generators.benchmarks import BENCHMARK_FACTORIES  # noqa: E402
from repro.partial.blackbox import PartialImplementation  # noqa: E402
from repro.partial.extraction import make_partial         # noqa: E402
from repro.partial.mutations import insert_random_error   # noqa: E402

#: (bench key, circuit, fraction, num_boxes, kind).  Kind ``error`` is
#: a full ladder on a case with one inserted error, ``clean`` a full
#: ladder with no error (all rungs run to completion), ``rp`` the
#: random-pattern rung alone on an error-free partial (the paper's
#: "r.p." column — a full pattern sweep, no early exit).
FULL_BENCHES: List[Tuple[str, str, float, int, str]] = [
    ("ladder_t2_alu4", "alu4", 0.1, 5, "error"),
    ("ladder_t2_C499", "C499", 0.1, 5, "error"),
    ("ladder_t2_C880", "C880", 0.1, 5, "error"),
    ("ladder_t2_comp", "comp", 0.1, 5, "error"),
    ("ladder_t2_term1", "term1", 0.1, 5, "error"),
    ("ladder_t3_alu4_40pct", "alu4", 0.4, 1, "error"),
    ("ladder_clean_alu4", "alu4", 0.1, 5, "clean"),
    ("ladder_clean_comp", "comp", 0.1, 5, "clean"),
    ("ladder_clean_term1", "term1", 0.1, 5, "clean"),
    ("ladder_clean_C880", "C880", 0.1, 5, "clean"),
    ("ladder_clean_C1908", "C1908", 0.1, 5, "clean"),
    ("ladder_clean_apex3", "apex3", 0.1, 5, "clean"),
    ("rp_alu4", "alu4", 0.1, 5, "rp"),
    ("rp_C499", "C499", 0.1, 5, "rp"),
    ("rp_C880", "C880", 0.1, 5, "rp"),
    ("rp_C1355", "C1355", 0.1, 5, "rp"),
    ("rp_C1908", "C1908", 0.1, 5, "rp"),
    ("rp_apex3", "apex3", 0.1, 5, "rp"),
    ("rp_comp", "comp", 0.1, 5, "rp"),
    ("rp_term1", "term1", 0.1, 5, "rp"),
    ("rp_C499_40pct", "C499", 0.4, 1, "rp"),
    ("rp_C1355_40pct", "C1355", 0.4, 1, "rp"),
    ("rp_apex3_40pct", "apex3", 0.4, 1, "rp"),
]

#: SAT-vs-BDD trajectory benches: the two rungs with CNF encodings,
#: timed on both engines (clean partials, so every check runs to
#: completion).  Trajectory only — reported and recorded, never gated:
#: which engine wins is a property of the netlist family, not a
#: regression signal (docs/sat.md, docs/performance.md).
SAT_BENCHES: List[Tuple[str, str, float, int]] = [
    ("sat_vs_bdd_comp", "comp", 0.1, 5),
    ("sat_vs_bdd_alu4", "alu4", 0.1, 5),
    ("sat_vs_bdd_term1", "term1", 0.1, 5),
]

QUICK_SAT_BENCHES: List[Tuple[str, str, float, int]] = [
    ("sat_vs_bdd_comp", "comp", 0.1, 5),
]

#: CI smoke subset: finishes in well under a minute.  apex3 is the
#: anchor — its multi-second walls on every stack give the pooled
#: ratio comparisons a noise-proof denominator; the sub-second
#: benches ride along for coverage and the hit-rate assert.
QUICK_BENCHES: List[Tuple[str, str, float, int, str]] = [
    ("ladder_t2_alu4", "alu4", 0.1, 5, "error"),
    ("ladder_t2_comp", "comp", 0.1, 5, "error"),
    ("ladder_clean_apex3", "apex3", 0.1, 5, "clean"),
    ("rp_alu4", "alu4", 0.1, 5, "rp"),
]


def _build_case(circuit: str, fraction: float, num_boxes: int,
                seed: int, kind: str = "error"):
    """(spec, partial) for one bench, deterministically.

    ``error`` benches get one random gate mutation inside the partial;
    ``clean``/``rp`` benches keep the extracted partial untouched.
    """
    from repro.experiments.runner import _tune_spec

    spec = BENCHMARK_FACTORIES[circuit]()
    tuned, _ = _tune_spec(spec)
    partial = make_partial(tuned, fraction=fraction,
                           num_boxes=num_boxes, seed=seed)
    if kind != "error":
        return tuned, partial
    mutated, _ = insert_random_error(partial.circuit,
                                     random.Random(seed + 6))
    return tuned, PartialImplementation(mutated, partial.boxes)


def _time_ladder(spec, impl, patterns: int, seed: int,
                 factory, rp_engine: str) -> Tuple[float, int, float]:
    """(wall seconds, peak live nodes, cache hit rate) of one ladder.

    All five checks run, each on a fresh manager from ``factory`` —
    the campaign workload.  Peak nodes is the max over the checks;
    the hit rate pools the per-check computed-table counters.
    """
    start = time.perf_counter()
    results = run_one_case(spec, impl, CHECKS, patterns, seed=seed,
                           bdd_factory=factory, rp_engine=rp_engine)
    wall = time.perf_counter() - start
    peak = max((r.stats.get("peak_nodes", 0) for r in results.values()),
               default=0)
    hits = sum(r.stats.get("cache_hits", 0) for r in results.values())
    misses = sum(r.stats.get("cache_misses", 0)
                 for r in results.values())
    rate = hits / (hits + misses) if hits + misses else 0.0
    return wall, peak, rate


def _time_rp(spec, impl, patterns: int, seed: int,
             engine: str) -> Tuple[float, int, float]:
    """Wall seconds of the random-pattern rung alone (``rp`` benches).

    The partial is error-free, so every engine sweeps the full pattern
    budget — no early exit to mask the per-pattern cost.
    """
    start = time.perf_counter()
    result = check_random_patterns(spec, impl, patterns=patterns,
                                   seed=seed, engine=engine)
    wall = time.perf_counter() - start
    if result.error_found:
        raise RuntimeError("rp bench found an error in an error-free "
                           "partial; bench is mis-specified")
    return wall, 0, 0.0


def run_benches(benches, patterns: int, seed: int, repeats: int,
                with_arena: bool = False,
                progress=print) -> Dict[str, Dict[str, float]]:
    """Measure every bench; returns the ``benches`` mapping."""
    if with_arena:
        from repro.bdd.arena import default_arena_bdd
    out: Dict[str, Dict[str, float]] = {}
    for key, circuit, fraction, num_boxes, kind in benches:
        spec, impl = _build_case(circuit, fraction, num_boxes, seed,
                                 kind)
        if kind == "rp":
            timer = lambda factory, engine: _time_rp(  # noqa: E731
                spec, impl, patterns, seed, engine)
        else:
            timer = lambda factory, engine: _time_ladder(  # noqa: E731
                spec, impl, patterns, seed, factory, engine)
        sides = [("", default_bdd, "packed"),
                 ("legacy_", default_legacy_bdd, "scalar")]
        if with_arena:
            sides.append(("arena_", default_arena_bdd, "lanes"))
        best: Dict[str, float] = {}
        for prefix, factory, engine in sides:
            wall = float("inf")
            peak = 0
            hit_rate = 0.0
            # Best-of-N on every side damps scheduler noise equally.
            for _ in range(repeats):
                w, p, rate = timer(factory, engine)
                if w < wall:
                    wall, peak, hit_rate = w, p, rate
            best[prefix + "wall_s"] = round(wall, 4)
            best[prefix + "peak_nodes"] = peak
            if prefix != "legacy_":
                best[prefix + "cache_hit_rate"] = round(hit_rate, 4)
        entry = {
            "wall_s": best["wall_s"],
            "peak_nodes": best["peak_nodes"],
            "cache_hit_rate": best["cache_hit_rate"],
            "legacy_wall_s": best["legacy_wall_s"],
            "legacy_peak_nodes": best["legacy_peak_nodes"],
            "speedup": round(best["legacy_wall_s"] / best["wall_s"], 3),
        }
        line = ("%-22s %7.2fs vs legacy %7.2fs  speedup %.2fx"
                % (key, entry["wall_s"], entry["legacy_wall_s"],
                   entry["speedup"]))
        if with_arena:
            entry["arena_wall_s"] = best["arena_wall_s"]
            entry["arena_peak_nodes"] = best["arena_peak_nodes"]
            entry["arena_cache_hit_rate"] = best["arena_cache_hit_rate"]
            entry["arena_speedup"] = round(
                best["legacy_wall_s"] / best["arena_wall_s"], 3)
            line += "  arena %.2fx" % entry["arena_speedup"]
        out[key] = entry
        progress(line)
    return out


def run_sat_benches(benches, seed: int, repeats: int,
                    progress=print) -> Dict[str, Dict]:
    """Time the symbolic-0,1,X and output-exact rungs on both engines.

    Each check runs on a fresh manager / fresh solver per repeat
    (best-of-N both sides), and the deterministic portfolio race
    (:mod:`repro.core.portfolio`) is run once to record which engine
    it picks.  ``ratio`` is bdd_wall / sat_wall (> 1 means SAT is
    faster).  Nothing here gates: the numbers track the trajectory.
    """
    from repro.core.output_exact import check_output_exact
    from repro.core.portfolio import (race_output_exact,
                                      race_symbolic_01x)
    from repro.core.symbolic01x import check_symbolic_01x
    from repro.sat import (check_output_exact_sat,
                           check_symbolic_01x_sat)

    checks = {
        "symbolic_01x": (
            lambda spec, impl: check_symbolic_01x(spec, impl,
                                                  default_bdd()),
            check_symbolic_01x_sat,
            lambda spec, impl: race_symbolic_01x(spec, impl,
                                                 default_bdd()),
        ),
        "output_exact": (
            lambda spec, impl: check_output_exact(spec, impl),
            check_output_exact_sat,
            lambda spec, impl: race_output_exact(spec, impl,
                                                 default_bdd()),
        ),
    }
    out: Dict[str, Dict] = {}
    for key, circuit, fraction, num_boxes in benches:
        spec, impl = _build_case(circuit, fraction, num_boxes, seed,
                                 kind="clean")
        entry: Dict[str, Dict[str, float]] = {}
        for name, (bdd_check, sat_check, racer) in checks.items():
            bdd_wall = sat_wall = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                bdd_check(spec, impl)
                bdd_wall = min(bdd_wall, time.perf_counter() - start)
                start = time.perf_counter()
                sat_check(spec, impl)
                sat_wall = min(sat_wall, time.perf_counter() - start)
            winner = racer(spec, impl).stats["engine"]
            entry[name] = {
                "bdd_wall_s": round(bdd_wall, 4),
                "sat_wall_s": round(sat_wall, 4),
                "ratio": round(bdd_wall / sat_wall, 3),
                "portfolio_winner": winner,
            }
            progress("%-22s %-13s bdd %7.3fs  sat %7.3fs  "
                     "ratio %.2fx  portfolio -> %s"
                     % (key, name, bdd_wall, sat_wall,
                        entry[name]["ratio"], winner))
        out[key] = entry
    return out


#: Ratio checks need signal.  Below _COMPARE_WALL_FLOOR combined
#: baseline wall seconds a bench is noise-dominated outright and is
#: reported informationally, excluded even from the pool (tens of ms
#: of scheduler jitter on a ~0.1 s ladder swings every number).
_COMPARE_WALL_FLOOR = 1.0
#: A bench's individual ratio is legacy/current: below this many
#: baseline wall seconds on the *current* side the denominator alone
#: (e.g. a ~20 ms lanes sweep against a multi-second scalar one) makes
#: the per-bench ratio swing past any sane tolerance, so such benches
#: participate in the pooled comparison only.
_COMPARE_DENOM_FLOOR = 0.05


def compare_to_baseline(benches: Dict[str, Dict], baseline: Dict,
                        tolerance: float, report=print) -> bool:
    """True when the speedup did not regress past ``tolerance``.

    Two layers, both on *ratios* (host-independent), over common
    benches whose baseline spent at least ``_COMPARE_WALL_FLOOR``
    combined wall seconds:

    * each such bench whose baseline current-stack wall also reaches
      ``_COMPARE_DENOM_FLOOR`` is compared individually;
    * the pooled ratio (sum of legacy walls over sum of current
      walls) is compared, for the current and the arena stack.
    """
    ok = True
    base_benches = baseline.get("benches", {})
    walls = legacy_walls = base_walls = base_legacy_walls = 0.0
    arena_walls = arena_legacy = base_arena_walls = base_arena_legacy \
        = 0.0
    for key, entry in benches.items():
        base = base_benches.get(key)
        if base is None or "speedup" not in base:
            continue
        if base["wall_s"] + base["legacy_wall_s"] < _COMPARE_WALL_FLOOR:
            report("-- %s: sub-second bench, not gated "
                   "(speedup %.2fx, baseline %.2fx)"
                   % (key, entry["speedup"], base["speedup"]))
            continue
        walls += entry["wall_s"]
        legacy_walls += entry["legacy_wall_s"]
        base_walls += base["wall_s"]
        base_legacy_walls += base["legacy_wall_s"]
        if "arena_wall_s" in entry and "arena_wall_s" in base:
            arena_walls += entry["arena_wall_s"]
            arena_legacy += entry["legacy_wall_s"]
            base_arena_walls += base["arena_wall_s"]
            base_arena_legacy += base["legacy_wall_s"]
        floor = base["speedup"] * (1.0 - tolerance)
        if base["wall_s"] < _COMPARE_DENOM_FLOOR:
            report("-- %s: denominator too small, pooled only "
                   "(speedup %.2fx, baseline %.2fx)"
                   % (key, entry["speedup"], base["speedup"]))
        elif entry["speedup"] < floor:
            report("REGRESSION %s: speedup %.2fx < %.2fx "
                   "(baseline %.2fx - %d%%)"
                   % (key, entry["speedup"], floor, base["speedup"],
                      round(100 * tolerance)))
            ok = False
        else:
            report("ok %s: speedup %.2fx (baseline %.2fx)"
                   % (key, entry["speedup"], base["speedup"]))
    if walls and base_walls:
        pooled = legacy_walls / walls
        base_pooled = base_legacy_walls / base_walls
        floor = base_pooled * (1.0 - tolerance)
        if pooled < floor:
            report("REGRESSION pooled: speedup %.2fx < %.2fx "
                   "(baseline %.2fx - %d%%)"
                   % (pooled, floor, base_pooled,
                      round(100 * tolerance)))
            ok = False
        else:
            report("ok pooled: speedup %.2fx (baseline %.2fx)"
                   % (pooled, base_pooled))
    if arena_walls and base_arena_walls:
        pooled = arena_legacy / arena_walls
        base_pooled = base_arena_legacy / base_arena_walls
        floor = base_pooled * (1.0 - tolerance)
        if pooled < floor:
            report("REGRESSION pooled arena: speedup %.2fx < %.2fx "
                   "(baseline %.2fx - %d%%)"
                   % (pooled, floor, base_pooled,
                      round(100 * tolerance)))
            ok = False
        else:
            report("ok pooled arena: speedup %.2fx (baseline %.2fx)"
                   % (pooled, base_pooled))
    return ok


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Before/after BDD kernel benchmark (BENCH_*.json)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke subset with fewer patterns; "
                             "also asserts the computed table is live "
                             "(hit rate > 0 on every bench)")
    parser.add_argument("--patterns", type=int, default=None,
                        help="random patterns for the r.p. rung "
                             "(default 5000 — the paper's budget — "
                             "or 100 with --quick)")
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--repeats", type=int, default=1,
                        help="best-of-N timing repetitions per side")
    parser.add_argument("--benchmarks", type=str, default=None,
                        help="comma-separated bench-key subset")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="committed BENCH_*.json to compare "
                             "speedup ratios against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup regression "
                             "vs --baseline (default 0.25)")
    parser.add_argument("-o", "--output", metavar="FILE", default=None,
                        help="write the result JSON here")
    parser.add_argument("--min-arena-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the pooled arena-stack "
                             "speedup over legacy reaches X (errors "
                             "out when numpy is unavailable)")
    parser.add_argument("--no-arena", action="store_true",
                        help="skip the arena stack even when numpy "
                             "is available")
    parser.add_argument("--no-sat", action="store_true",
                        help="skip the SAT-vs-BDD trajectory column")
    args = parser.parse_args(argv)

    with_arena = arena_available() and not args.no_arena
    if args.min_arena_speedup is not None and not with_arena:
        from repro.bdd.arena import ArenaUnavailableError
        try:
            diagnostic = ArenaUnavailableError().diagnostic
        except Exception:
            diagnostic = {"error": "arena-backend-unavailable"}
        print("FAIL: --min-arena-speedup needs the arena stack: %s"
              % json.dumps(diagnostic, sort_keys=True), file=sys.stderr)
        return 2

    benches = QUICK_BENCHES if args.quick else FULL_BENCHES
    if args.benchmarks:
        wanted = {k.strip() for k in args.benchmarks.split(",")}
        known = {b[0] for b in FULL_BENCHES}
        unknown = wanted - known
        if unknown:
            parser.error("unknown benches: %s (known: %s)"
                         % (", ".join(sorted(unknown)),
                            ", ".join(sorted(known))))
        benches = [b for b in FULL_BENCHES if b[0] in wanted]
    patterns = args.patterns or (100 if args.quick else 5000)

    measured = run_benches(benches, patterns, args.seed, args.repeats,
                           with_arena=with_arena,
                           progress=lambda msg: print(msg,
                                                      file=sys.stderr))
    walls = [e["wall_s"] for e in measured.values()]
    legacy_walls = [e["legacy_wall_s"] for e in measured.values()]
    aggregate = {
        "wall_s": round(sum(walls), 4),
        "legacy_wall_s": round(sum(legacy_walls), 4),
        "speedup": round(sum(legacy_walls) / sum(walls), 3),
    }
    if with_arena:
        arena_walls = [e["arena_wall_s"] for e in measured.values()]
        aggregate["arena_wall_s"] = round(sum(arena_walls), 4)
        aggregate["arena_speedup"] = round(
            sum(legacy_walls) / sum(arena_walls), 3)
    result = {
        "meta": {
            "python": platform.python_version(),
            "quick": args.quick,
            "patterns": patterns,
            "seed": args.seed,
            "repeats": args.repeats,
        },
        "benches": measured,
        "aggregate": aggregate,
    }
    if not args.no_sat and not args.benchmarks:
        sat_benches = QUICK_SAT_BENCHES if args.quick else SAT_BENCHES
        result["sat_vs_bdd"] = run_sat_benches(
            sat_benches, args.seed, args.repeats,
            progress=lambda msg: print(msg, file=sys.stderr))
    text = json.dumps(result, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print("wrote %s" % args.output, file=sys.stderr)
    else:
        print(text)
    summary = "aggregate speedup: %.2fx" % aggregate["speedup"]
    if with_arena:
        summary += "  arena: %.2fx" % aggregate["arena_speedup"]
    print(summary, file=sys.stderr)

    status = 0
    if args.quick:
        kinds = {b[0]: b[4] for b in FULL_BENCHES + QUICK_BENCHES}
        dead = [k for k, e in measured.items()
                if kinds.get(k) != "rp" and e["cache_hit_rate"] <= 0.0]
        if dead:
            print("FAIL: computed table saw no hits on: %s"
                  % ", ".join(dead), file=sys.stderr)
            status = 1
    if args.min_arena_speedup is not None:
        got = aggregate["arena_speedup"]
        if got < args.min_arena_speedup:
            print("FAIL: pooled arena speedup %.2fx < required %.2fx"
                  % (got, args.min_arena_speedup), file=sys.stderr)
            status = 1
        else:
            print("arena gate ok: %.2fx >= %.2fx"
                  % (got, args.min_arena_speedup), file=sys.stderr)
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        if not compare_to_baseline(
                measured, baseline, args.tolerance,
                report=lambda msg: print(msg, file=sys.stderr)):
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
