#!/usr/bin/env python
"""Tracked before/after benchmark of the BDD kernels (BENCH_*.json).

Runs the full check ladder on Table-2-style cases (10% of the gates in
five Black Boxes) and, unless ``--quick``, a Table-3-style case (40% in
one box), once on the current stack (iterative manager + bit-parallel
random-pattern engine) and once on the frozen pre-rewrite reference
(:mod:`repro.bdd._legacy` — recursive kernels, unbounded single
computed table, historic sifting swap — plus the scalar
one-pattern-at-a-time random-pattern engine).  Both run on the same
interpreter and host, which makes the per-bench speedup ratio
meaningful across machines — unlike absolute seconds.

Each check runs on a fresh manager (``run_one_case``), exactly as the
campaign that produces the paper's tables does, so the wall clock
covers what dominates a real campaign: symbolic simulation, dynamic
sifting and the Boolean/quantifier kernels, once per rung.

Output schema (``BENCH_PR4.json``)::

    {"meta":    {"python": "3.11.7", "quick": false, "patterns": 300},
     "benches": {"ladder_t2_alu4": {"wall_s": 0.41,
                                    "peak_nodes": 9182,
                                    "cache_hit_rate": 0.41,
                                    "legacy_wall_s": 0.58,
                                    "legacy_peak_nodes": 9182,
                                    "speedup": 1.41}, ...},
     "aggregate": {"wall_s": ..., "legacy_wall_s": ..., "speedup": ...}}

Usage::

    python benchmarks/run_bench.py                      # full suite
    python benchmarks/run_bench.py --quick              # CI smoke (fast)
    python benchmarks/run_bench.py --baseline BENCH_PR4.json
    python benchmarks/run_bench.py -o BENCH_PR4.json

``--baseline`` compares the measured per-bench *speedup ratios* against
a committed BENCH_*.json and exits non-zero when any common bench
regressed by more than ``--tolerance`` (default 25%).  Ratios are
host-independent, so the comparison is stable on shared CI runners
where absolute seconds are not.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.bdd._legacy import default_legacy_bdd          # noqa: E402
from repro.bdd.function import default_bdd                # noqa: E402
from repro.experiments.runner import CHECKS, run_one_case  # noqa: E402
from repro.generators.benchmarks import BENCHMARK_FACTORIES  # noqa: E402
from repro.partial.blackbox import PartialImplementation  # noqa: E402
from repro.partial.extraction import make_partial         # noqa: E402
from repro.partial.mutations import insert_random_error   # noqa: E402

#: (bench key, circuit, fraction, num_boxes) — Table-2 and Table-3
#: shapes on the circuits where the ladder's symbolic rungs dominate.
FULL_BENCHES: List[Tuple[str, str, float, int]] = [
    ("ladder_t2_alu4", "alu4", 0.1, 5),
    ("ladder_t2_C499", "C499", 0.1, 5),
    ("ladder_t2_C880", "C880", 0.1, 5),
    ("ladder_t2_comp", "comp", 0.1, 5),
    ("ladder_t2_term1", "term1", 0.1, 5),
    ("ladder_t3_alu4_40pct", "alu4", 0.4, 1),
]

#: CI smoke subset: finishes in well under a minute.
QUICK_BENCHES: List[Tuple[str, str, float, int]] = [
    ("ladder_t2_alu4", "alu4", 0.1, 5),
    ("ladder_t2_comp", "comp", 0.1, 5),
]


def _build_case(circuit: str, fraction: float, num_boxes: int,
                seed: int):
    """(spec, partial-with-error) for one bench, deterministically."""
    from repro.experiments.runner import _tune_spec

    spec = BENCHMARK_FACTORIES[circuit]()
    tuned, _ = _tune_spec(spec)
    partial = make_partial(tuned, fraction=fraction,
                           num_boxes=num_boxes, seed=seed)
    mutated, _ = insert_random_error(partial.circuit,
                                     random.Random(seed + 6))
    return tuned, PartialImplementation(mutated, partial.boxes)


def _time_ladder(spec, impl, patterns: int, seed: int,
                 factory, rp_engine: str) -> Tuple[float, int, float]:
    """(wall seconds, peak live nodes, cache hit rate) of one ladder.

    All five checks run, each on a fresh manager from ``factory`` —
    the campaign workload.  Peak nodes is the max over the checks;
    the hit rate pools the per-check computed-table counters.
    """
    start = time.perf_counter()
    results = run_one_case(spec, impl, CHECKS, patterns, seed=seed,
                           bdd_factory=factory, rp_engine=rp_engine)
    wall = time.perf_counter() - start
    peak = max((r.stats.get("peak_nodes", 0) for r in results.values()),
               default=0)
    hits = sum(r.stats.get("cache_hits", 0) for r in results.values())
    misses = sum(r.stats.get("cache_misses", 0)
                 for r in results.values())
    rate = hits / (hits + misses) if hits + misses else 0.0
    return wall, peak, rate


def run_benches(benches, patterns: int, seed: int, repeats: int,
                progress=print) -> Dict[str, Dict[str, float]]:
    """Measure every bench; returns the ``benches`` mapping."""
    out: Dict[str, Dict[str, float]] = {}
    for key, circuit, fraction, num_boxes in benches:
        spec, impl = _build_case(circuit, fraction, num_boxes, seed)
        new_wall = legacy_wall = float("inf")
        peak = legacy_peak = 0
        hit_rate = 0.0
        # Best-of-N on both sides damps scheduler noise the same way.
        for _ in range(repeats):
            wall, p, rate = _time_ladder(spec, impl, patterns, seed,
                                         default_bdd, "packed")
            if wall < new_wall:
                new_wall, peak, hit_rate = wall, p, rate
            wall, p, _ = _time_ladder(spec, impl, patterns, seed,
                                      default_legacy_bdd, "scalar")
            if wall < legacy_wall:
                legacy_wall, legacy_peak = wall, p
        out[key] = {
            "wall_s": round(new_wall, 4),
            "peak_nodes": peak,
            "cache_hit_rate": round(hit_rate, 4),
            "legacy_wall_s": round(legacy_wall, 4),
            "legacy_peak_nodes": legacy_peak,
            "speedup": round(legacy_wall / new_wall, 3),
        }
        progress("%-22s %7.2fs vs legacy %7.2fs  speedup %.2fx  "
                 "hit-rate %.1f%%" % (key, new_wall, legacy_wall,
                                      out[key]["speedup"],
                                      100.0 * hit_rate))
    return out


#: Per-bench ratio checks need signal: below this many combined wall
#: seconds in the baseline, a single bench's ratio is noise-dominated
#: and only participates in the pooled comparison.
_COMPARE_WALL_FLOOR = 1.0


def compare_to_baseline(benches: Dict[str, Dict], baseline: Dict,
                        tolerance: float, report=print) -> bool:
    """True when the speedup did not regress past ``tolerance``.

    Two layers, both on *ratios* (host-independent):

    * each common bench whose baseline spent at least
      ``_COMPARE_WALL_FLOOR`` combined wall seconds is compared
      individually — sub-second ladders are ratio-noise and are only
      pooled;
    * the pooled ratio over all common benches (sum of legacy walls
      over sum of current walls) is always compared.
    """
    ok = True
    base_benches = baseline.get("benches", {})
    walls = legacy_walls = base_walls = base_legacy_walls = 0.0
    for key, entry in benches.items():
        base = base_benches.get(key)
        if base is None or "speedup" not in base:
            continue
        walls += entry["wall_s"]
        legacy_walls += entry["legacy_wall_s"]
        base_walls += base["wall_s"]
        base_legacy_walls += base["legacy_wall_s"]
        floor = base["speedup"] * (1.0 - tolerance)
        if base["wall_s"] + base["legacy_wall_s"] < _COMPARE_WALL_FLOOR:
            report("-- %s: sub-second bench, pooled only "
                   "(speedup %.2fx, baseline %.2fx)"
                   % (key, entry["speedup"], base["speedup"]))
        elif entry["speedup"] < floor:
            report("REGRESSION %s: speedup %.2fx < %.2fx "
                   "(baseline %.2fx - %d%%)"
                   % (key, entry["speedup"], floor, base["speedup"],
                      round(100 * tolerance)))
            ok = False
        else:
            report("ok %s: speedup %.2fx (baseline %.2fx)"
                   % (key, entry["speedup"], base["speedup"]))
    if walls and base_walls:
        pooled = legacy_walls / walls
        base_pooled = base_legacy_walls / base_walls
        floor = base_pooled * (1.0 - tolerance)
        if pooled < floor:
            report("REGRESSION pooled: speedup %.2fx < %.2fx "
                   "(baseline %.2fx - %d%%)"
                   % (pooled, floor, base_pooled,
                      round(100 * tolerance)))
            ok = False
        else:
            report("ok pooled: speedup %.2fx (baseline %.2fx)"
                   % (pooled, base_pooled))
    return ok


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Before/after BDD kernel benchmark (BENCH_*.json)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke subset with fewer patterns; "
                             "also asserts the computed table is live "
                             "(hit rate > 0 on every bench)")
    parser.add_argument("--patterns", type=int, default=None,
                        help="random patterns for the r.p. rung "
                             "(default 300, or 100 with --quick)")
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--repeats", type=int, default=1,
                        help="best-of-N timing repetitions per side")
    parser.add_argument("--benchmarks", type=str, default=None,
                        help="comma-separated bench-key subset")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="committed BENCH_*.json to compare "
                             "speedup ratios against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup regression "
                             "vs --baseline (default 0.25)")
    parser.add_argument("-o", "--output", metavar="FILE", default=None,
                        help="write the result JSON here")
    args = parser.parse_args(argv)

    benches = QUICK_BENCHES if args.quick else FULL_BENCHES
    if args.benchmarks:
        wanted = {k.strip() for k in args.benchmarks.split(",")}
        known = {b[0] for b in FULL_BENCHES}
        unknown = wanted - known
        if unknown:
            parser.error("unknown benches: %s (known: %s)"
                         % (", ".join(sorted(unknown)),
                            ", ".join(sorted(known))))
        benches = [b for b in FULL_BENCHES if b[0] in wanted]
    patterns = args.patterns or (100 if args.quick else 300)

    measured = run_benches(benches, patterns, args.seed, args.repeats,
                           progress=lambda msg: print(msg,
                                                      file=sys.stderr))
    walls = [e["wall_s"] for e in measured.values()]
    legacy_walls = [e["legacy_wall_s"] for e in measured.values()]
    result = {
        "meta": {
            "python": platform.python_version(),
            "quick": args.quick,
            "patterns": patterns,
            "seed": args.seed,
            "repeats": args.repeats,
        },
        "benches": measured,
        "aggregate": {
            "wall_s": round(sum(walls), 4),
            "legacy_wall_s": round(sum(legacy_walls), 4),
            "speedup": round(sum(legacy_walls) / sum(walls), 3),
        },
    }
    text = json.dumps(result, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print("wrote %s" % args.output, file=sys.stderr)
    else:
        print(text)
    print("aggregate speedup: %.2fx" % result["aggregate"]["speedup"],
          file=sys.stderr)

    status = 0
    if args.quick:
        dead = [k for k, e in measured.items()
                if e["cache_hit_rate"] <= 0.0]
        if dead:
            print("FAIL: computed table saw no hits on: %s"
                  % ", ".join(dead), file=sys.stderr)
            status = 1
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        if not compare_to_baseline(
                measured, baseline, args.tolerance,
                report=lambda msg: print(msg, file=sys.stderr)):
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
