"""Observability overhead: tracing must be (nearly) free.

The contract in ``docs/observability.md`` is that the instrumentation
costs <= 2% even when a tracer is *installed*: every hook the hot path
sees is one ``is None`` test, and actual event emission happens only on
cold events (GC, reordering passes, rung boundaries, quantification
picks).  Measuring enabled-vs-disabled is deliberately the *stricter*
experiment — the enabled run does a strict superset of the disabled
run's work, so passing it bounds the disabled-mode overhead too (the
uninstrumented baseline no longer exists to measure against).

CPU time, not wall clock — co-tenant interference on a shared box
otherwise dominates the few-percent signal; minimum over rounds with
alternating measurement order cancels what remains (same methodology
as ``test_bench_budget_overhead``).

Runs standalone (``python benchmarks/test_obs_micro.py``) so the CI
perf-smoke job needs no pytest; pytest also collects it as a test.
"""

import sys
import time

from repro.core.ladder import run_ladder
from repro.generators import magnitude_comparator
from repro.obs import Tracer, set_tracer
from repro.partial.extraction import make_partial

_LIMIT = 0.02


def _workload():
    spec = magnitude_comparator(6)
    partial = make_partial(spec, fraction=0.25, num_boxes=1, seed=11)
    return spec, partial


def _run(spec, partial, traced):
    tracer = Tracer() if traced else None
    previous = set_tracer(tracer)
    try:
        run_ladder(spec, partial, patterns=64, seed=5)
    finally:
        set_tracer(previous)
        if tracer is not None:
            tracer.close_all()


def test_bench_obs_overhead():
    """Installed tracer costs <= 2% on a full ladder run."""
    spec, partial = _workload()

    def sample(traced, inner=3):
        t0 = time.process_time()
        for _ in range(inner):
            _run(spec, partial, traced)
        return time.process_time() - t0

    def measure():
        for _ in range(2):  # warm-up (imports, allocator, caches)
            _run(spec, partial, False)
            _run(spec, partial, True)
        plain = traced = float("inf")
        for i in range(10):
            if i % 2 == 0:
                plain = min(plain, sample(False))
                traced = min(traced, sample(True))
            else:
                traced = min(traced, sample(True))
                plain = min(plain, sample(False))
        return traced / plain - 1.0

    overhead = measure()
    if overhead > _LIMIT:  # one retry: a noisy neighbour is not a fail
        overhead = min(overhead, measure())
    assert overhead <= _LIMIT, \
        "tracing overhead %.1f%% exceeds %d%%" % (100 * overhead,
                                                  100 * _LIMIT)
    return overhead


if __name__ == "__main__":
    measured = test_bench_obs_overhead()
    print("tracing overhead: %+.2f%% (limit %d%%)"
          % (100 * measured, 100 * _LIMIT))
    sys.exit(0)
