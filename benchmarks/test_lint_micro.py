"""Micro-benchmarks of the linter: O(V+E) scaling, ladder overhead.

Two guarantees from ``docs/linting.md`` are enforced here rather than in
the unit suite (they need wall-clock measurements):

* lint cost grows linearly in the gate count, and
* the ``run_ladder`` pre-flight lint adds <5% to a real check.
"""

import time

import pytest

from repro.analysis import lint_circuit, lint_partial
from repro.circuit import Circuit, GateType
from repro.core import run_ladder
from repro.generators import alu4_like, c1355_like, c1908_like
from repro.partial import make_partial


def _chain(n_gates: int) -> Circuit:
    """An n-gate circuit with bounded fan-in (E proportional to V)."""
    c = Circuit("chain%d" % n_gates)
    prev = c.add_input("x0")
    other = c.add_input("x1")
    for i in range(n_gates):
        gtype = (GateType.AND, GateType.OR, GateType.XOR)[i % 3]
        prev, other = c.add_gate("g%d" % i, gtype, [prev, other]), prev
    c.add_output(prev)
    return c


def _best_lint_seconds(circuit: Circuit, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        fresh = circuit.copy()  # empty topo cache each round
        start = time.perf_counter()
        report = lint_circuit(fresh)
        best = min(best, time.perf_counter() - start)
        assert report.ok
    return best


def test_lint_scales_linearly():
    """10x the gates must cost well under 100x the time (no quadratic
    blowup).  The 30x bound leaves generous room for timer noise and
    allocator effects while still failing any O(V^2) regression."""
    small = _best_lint_seconds(_chain(1_000))
    large = _best_lint_seconds(_chain(10_000))
    assert large < 30 * max(small, 1e-5), \
        "lint: %d gates took %.4fs, %d gates %.4fs" \
        % (1_000, small, 10_000, large)


def test_bench_lint_alu4(benchmark):
    circuit = alu4_like()
    benchmark(lambda: lint_circuit(circuit.copy()))


def test_bench_lint_partial_c1908(benchmark):
    partial = make_partial(c1908_like(), fraction=0.1, num_boxes=5,
                           seed=7)
    benchmark(lambda: lint_partial(partial))


def test_ladder_preflight_overhead_under_5_percent():
    """The pre-flight lint must be noise next to one symbolic check.

    Runs on the largest generator benchmark (C1355-like, 448 gates);
    the two variants are timed interleaved (best-of-N each) so drift in
    the interpreter/allocator state biases neither side.
    """
    spec = c1355_like()
    partial = make_partial(spec, fraction=0.1, num_boxes=1, seed=3)

    def once(lint: bool) -> float:
        start = time.perf_counter()
        run_ladder(spec, partial, checks=("local",), lint=lint)
        return time.perf_counter() - start

    once(True)  # warm-up, outside the measurement
    without = min(once(False) for _ in range(5))
    with_lint = min(once(True) for _ in range(5))
    overhead = (with_lint - without) / without
    assert overhead < 0.05, \
        "lint pre-flight adds %.1f%% to run_ladder" % (100 * overhead)
