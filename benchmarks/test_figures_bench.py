"""Benchmarks for the paper's figure examples (Sections 2.1-2.2.3).

One bench per figure: the full symbolic ladder on each worked example,
asserting the figure's documented separation while timing it.
"""

import pytest

from repro.core import run_ladder
from repro.generators import ALL_FIGURES

SYMBOLIC = ("symbolic_01x", "local", "output_exact", "input_exact")


@pytest.mark.parametrize("name", list(ALL_FIGURES))
def test_bench_figure(benchmark, name):
    factory, expected_first = ALL_FIGURES[name]
    spec, partial = factory()

    def ladder():
        return run_ladder(spec, partial, checks=SYMBOLIC,
                          stop_at_first_error=False)

    results = benchmark(ladder)
    first = next((r.check for r in results if r.error_found), None)
    assert first == expected_first
